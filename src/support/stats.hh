/**
 * @file
 * Lightweight named-statistics registry. Engine components register
 * counters and timers here; benchmark harnesses snapshot and print
 * them (e.g., the solver-time fractions of Fig 9).
 */

#ifndef S2E_SUPPORT_STATS_HH
#define S2E_SUPPORT_STATS_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace s2e {

/** A mutable bag of named counters (u64) and accumulated durations. */
class Stats
{
  public:
    /** Add delta to counter name (creating it at zero). */
    void
    add(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    void
    set(const std::string &name, uint64_t value)
    {
        counters_[name] = value;
    }

    /** Track a maximum (e.g., memory high watermark). */
    void
    high(const std::string &name, uint64_t value)
    {
        auto &slot = counters_[name];
        if (value > slot)
            slot = value;
    }

    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Accumulate wall-clock seconds under a named timer. */
    void
    addSeconds(const std::string &name, double secs)
    {
        seconds_[name] += secs;
    }

    double
    seconds(const std::string &name) const
    {
        auto it = seconds_.find(name);
        return it == seconds_.end() ? 0.0 : it->second;
    }

    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &timers() const { return seconds_; }

    void
    clear()
    {
        counters_.clear();
        seconds_.clear();
    }

    /** Render all stats as "name = value" lines. */
    std::string toString() const;

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, double> seconds_;
};

/** RAII wall-clock timer accumulating into a Stats entry. */
class ScopedTimer
{
  public:
    ScopedTimer(Stats &stats, std::string name)
        : stats_(stats), name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedTimer()
    {
        auto end = std::chrono::steady_clock::now();
        stats_.addSeconds(
            name_, std::chrono::duration<double>(end - start_).count());
    }

  private:
    Stats &stats_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace s2e

#endif // S2E_SUPPORT_STATS_HH
