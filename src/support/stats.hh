/**
 * @file
 * Lightweight named-statistics registry. Engine components register
 * counters and timers here; benchmark harnesses snapshot and print
 * them (e.g., the solver-time fractions of Fig 9).
 *
 * Two access tiers: the string-keyed add()/get() API for cold paths,
 * and stable slot references (counterSlot/timerSlot) that hot paths
 * register once and then bump in O(1) — no string formatting and no
 * map lookup per event. Slots stay valid for the lifetime of the
 * Stats object (std::map nodes do not move).
 *
 * Concurrency: the registry itself (map structure) is guarded by an
 * internal mutex, so slot registration and cold-path add/get are safe
 * from any thread. Slot *updates* must go through the static bump() /
 * raiseTo() / bumpSeconds() helpers, which use relaxed std::atomic_ref
 * operations — race-free when multiple workers share a slot, and
 * compiled to a plain increment's cost on uncontended cache lines.
 * Aggregate snapshots (counters()/timers()/toString()) copy under the
 * lock but read slots non-atomically, so take them only while no
 * concurrent bumps are in flight (i.e., outside a parallel run).
 */

#ifndef S2E_SUPPORT_STATS_HH
#define S2E_SUPPORT_STATS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace s2e {

/** A mutable bag of named counters (u64) and accumulated durations. */
class Stats
{
  public:
    Stats() = default;

    Stats(const Stats &other) { *this = other; }

    Stats &
    operator=(const Stats &other)
    {
        if (this == &other)
            return *this;
        std::scoped_lock lock(mu_, other.mu_);
        counters_ = other.counters_;
        seconds_ = other.seconds_;
        return *this;
    }

    /** Add delta to counter name (creating it at zero). */
    void
    add(const std::string &name, uint64_t delta = 1)
    {
        std::lock_guard<std::mutex> lock(mu_);
        bump(counters_[name], delta);
    }

    void
    set(const std::string &name, uint64_t value)
    {
        std::lock_guard<std::mutex> lock(mu_);
        counters_[name] = value;
    }

    /** Track a maximum (e.g., memory high watermark). */
    void
    high(const std::string &name, uint64_t value)
    {
        std::lock_guard<std::mutex> lock(mu_);
        raiseTo(counters_[name], value);
    }

    uint64_t
    get(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : read(it->second);
    }

    /** Accumulate wall-clock seconds under a named timer. */
    void
    addSeconds(const std::string &name, double secs)
    {
        std::lock_guard<std::mutex> lock(mu_);
        bumpSeconds(seconds_[name], secs);
    }

    double
    seconds(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = seconds_.find(name);
        return it == seconds_.end() ? 0.0 : it->second;
    }

    /** Overwrite a timer (for flushed absolute values). */
    void
    setSeconds(const std::string &name, double secs)
    {
        std::lock_guard<std::mutex> lock(mu_);
        seconds_[name] = secs;
    }

    // --- Hot-path slot API --------------------------------------------
    //
    // Register once (pays the map lookup under the lock), then update
    // through the returned reference with bump()/raiseTo(). References
    // remain valid as long as the Stats object lives; clear()
    // invalidates them.

    /** Stable reference to a counter slot (created at zero). */
    uint64_t &
    counterSlot(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(mu_);
        return counters_[name];
    }

    /** Stable reference to a timer slot (created at zero). */
    double &
    timerSlot(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(mu_);
        return seconds_[name];
    }

    /** Relaxed-atomic slot increment; safe from any thread. */
    static void
    bump(uint64_t &slot, uint64_t delta = 1)
    {
        std::atomic_ref<uint64_t>(slot).fetch_add(delta,
                                                  std::memory_order_relaxed);
    }

    /** Relaxed-atomic slot read (pairs with bump/raiseTo). */
    static uint64_t
    read(const uint64_t &slot)
    {
        // atomic_ref<const T> is not portable until C++26; the cast is
        // sound because the referent is always a mutable map slot.
        return std::atomic_ref<uint64_t>(const_cast<uint64_t &>(slot))
            .load(std::memory_order_relaxed);
    }

    /** Slot-based high-watermark update (atomic CAS loop). */
    static void
    raiseTo(uint64_t &slot, uint64_t value)
    {
        std::atomic_ref<uint64_t> ref(slot);
        uint64_t cur = ref.load(std::memory_order_relaxed);
        while (value > cur &&
               !ref.compare_exchange_weak(cur, value,
                                          std::memory_order_relaxed))
        {
        }
    }

    /** Relaxed-atomic timer-slot accumulate. */
    static void
    bumpSeconds(double &slot, double secs)
    {
        std::atomic_ref<double> ref(slot);
        double cur = ref.load(std::memory_order_relaxed);
        while (!ref.compare_exchange_weak(cur, cur + secs,
                                          std::memory_order_relaxed))
        {
        }
    }

    /**
     * Fold another registry into this one: counters add (except names
     * containing "max", which take the high watermark) and timers add.
     * Used to merge per-worker solver/profiler stats after a parallel
     * run. `other` must be quiescent.
     */
    void
    mergeFrom(const Stats &other)
    {
        std::scoped_lock lock(mu_, other.mu_);
        for (const auto &[name, value] : other.counters_) {
            auto &slot = counters_[name];
            if (name.find("max") != std::string::npos) {
                if (value > slot)
                    slot = value;
            } else {
                slot += value;
            }
        }
        for (const auto &[name, secs] : other.seconds_)
            seconds_[name] += secs;
    }

    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &timers() const { return seconds_; }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mu_);
        counters_.clear();
        seconds_.clear();
    }

    /** Render all stats as "name = value" lines. */
    std::string toString() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, double> seconds_;
};

/** RAII wall-clock timer accumulating into a Stats entry. */
class ScopedTimer
{
  public:
    ScopedTimer(Stats &stats, std::string name)
        : slot_(&stats.timerSlot(name)),
          start_(std::chrono::steady_clock::now())
    {
    }

    /** Hot-path variant: accumulate into a pre-registered slot. */
    explicit ScopedTimer(double &slot)
        : slot_(&slot), start_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedTimer()
    {
        auto end = std::chrono::steady_clock::now();
        Stats::bumpSeconds(
            *slot_, std::chrono::duration<double>(end - start_).count());
    }

  private:
    double *slot_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Pointer-keyed cache of counter slots for per-site counters whose
 * site is a string literal (`prefix.site`). The first bump of a site
 * builds the composite name once; subsequent bumps are a short
 * pointer scan plus an increment — no strprintf, no map lookup.
 *
 * Thread-safe: hits scan a fixed array published with release stores
 * (lock-free); misses take a mutex to register the site. Sites beyond
 * the fixed capacity still resolve correctly, they just pay the slow
 * path every time.
 */
class SiteCounterCache
{
  public:
    SiteCounterCache(Stats &stats, std::string prefix)
        : stats_(stats), prefix_(std::move(prefix))
    {
    }

    uint64_t &
    slot(const char *site)
    {
        size_t n = count_.load(std::memory_order_acquire);
        for (size_t i = 0; i < n; ++i)
            if (entries_[i].key == site)
                return *entries_[i].slot;
        return slotSlow(site);
    }

  private:
    uint64_t &
    slotSlow(const char *site)
    {
        std::lock_guard<std::mutex> lock(mu_);
        size_t n = count_.load(std::memory_order_relaxed);
        for (size_t i = 0; i < n; ++i)
            if (entries_[i].key == site)
                return *entries_[i].slot;
        uint64_t &created =
            stats_.counterSlot(prefix_ + "." + site);
        if (n < kCapacity) {
            entries_[n] = {site, &created};
            count_.store(n + 1, std::memory_order_release);
        }
        return created;
    }

    static constexpr size_t kCapacity = 64;
    struct Entry {
        const char *key;
        uint64_t *slot;
    };

    Stats &stats_;
    std::string prefix_;
    std::array<Entry, kCapacity> entries_{};
    std::atomic<size_t> count_{0};
    std::mutex mu_;
};

} // namespace s2e

#endif // S2E_SUPPORT_STATS_HH
