/**
 * @file
 * Deterministic pseudo-random number generation. All randomized
 * components (Random searcher, fuzzing baseline, workload generators)
 * take an explicit Rng so whole-platform runs are reproducible.
 */

#ifndef S2E_SUPPORT_RNG_HH
#define S2E_SUPPORT_RNG_HH

#include <cstdint>

namespace s2e {

/** splitmix64-seeded xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL)
    {
        // splitmix64 to spread the seed across the state.
        uint64_t x = seed;
        for (auto &w : s_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            w = z ^ (z >> 31);
        }
    }

    /** Uniform 64-bit value. */
    uint64_t
    next()
    {
        auto rotl = [](uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        uint64_t result = rotl(s_[1] * 5, 7) * 9;
        uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return real() < p; }

  private:
    uint64_t s_[4];
};

} // namespace s2e

#endif // S2E_SUPPORT_RNG_HH
