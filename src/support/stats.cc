#include "support/stats.hh"

#include "support/logging.hh"

namespace s2e {

std::string
Stats::toString() const
{
    std::string out;
    for (const auto &[name, value] : counters_)
        out += strprintf("%s = %llu\n", name.c_str(),
                         static_cast<unsigned long long>(value));
    for (const auto &[name, secs] : seconds_)
        out += strprintf("%s = %.6f s\n", name.c_str(), secs);
    return out;
}

} // namespace s2e
