/**
 * @file
 * Intrusive reference counting, used by the expression DAG where
 * shared_ptr's control-block overhead would dominate (expressions are
 * allocated by the million during symbolic execution).
 */

#ifndef S2E_SUPPORT_REF_HH
#define S2E_SUPPORT_REF_HH

#include <cstdint>
#include <utility>

namespace s2e {

/**
 * Base class adding an intrusive reference count. Not thread safe:
 * the engine is single-threaded by design (states are explored one at
 * a time, like the original S2E engine core).
 */
class RefCounted
{
  public:
    RefCounted() = default;
    RefCounted(const RefCounted &) = delete;
    RefCounted &operator=(const RefCounted &) = delete;

    void incRef() const { ++refCount_; }

    /** Returns true when the count dropped to zero and *this must die. */
    bool decRef() const { return --refCount_ == 0; }

    uint32_t refCount() const { return refCount_; }

  protected:
    ~RefCounted() = default;

  private:
    mutable uint32_t refCount_ = 0;
};

/** Intrusive smart pointer over RefCounted types. */
template <typename T>
class Ref
{
  public:
    Ref() = default;

    Ref(T *p) : ptr_(p)
    {
        if (ptr_)
            ptr_->incRef();
    }

    Ref(const Ref &o) : ptr_(o.ptr_)
    {
        if (ptr_)
            ptr_->incRef();
    }

    template <typename U>
    Ref(const Ref<U> &o) : ptr_(o.get())
    {
        if (ptr_)
            ptr_->incRef();
    }

    Ref(Ref &&o) noexcept : ptr_(o.ptr_) { o.ptr_ = nullptr; }

    ~Ref() { release(); }

    Ref &
    operator=(const Ref &o)
    {
        if (o.ptr_)
            o.ptr_->incRef();
        release();
        ptr_ = o.ptr_;
        return *this;
    }

    Ref &
    operator=(Ref &&o) noexcept
    {
        if (this != &o) {
            release();
            ptr_ = o.ptr_;
            o.ptr_ = nullptr;
        }
        return *this;
    }

    T *get() const { return ptr_; }
    T *operator->() const { return ptr_; }
    T &operator*() const { return *ptr_; }
    explicit operator bool() const { return ptr_ != nullptr; }

    bool operator==(const Ref &o) const { return ptr_ == o.ptr_; }
    bool operator!=(const Ref &o) const { return ptr_ != o.ptr_; }
    bool operator<(const Ref &o) const { return ptr_ < o.ptr_; }

  private:
    void
    release()
    {
        if (ptr_ && ptr_->decRef())
            delete ptr_;
        ptr_ = nullptr;
    }

    T *ptr_ = nullptr;
};

} // namespace s2e

#endif // S2E_SUPPORT_REF_HH
