/**
 * @file
 * Bit-manipulation helpers shared by the expression library (known-bits
 * analysis), the bit-blaster, and the ISA decoder.
 */

#ifndef S2E_SUPPORT_BITOPS_HH
#define S2E_SUPPORT_BITOPS_HH

#include <cstdint>

namespace s2e {

/** Mask with the low `width` bits set; width in [0, 64]. */
inline uint64_t
lowMask(unsigned width)
{
    return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

/** Truncate value to `width` bits. */
inline uint64_t
truncate(uint64_t value, unsigned width)
{
    return value & lowMask(width);
}

/** Sign-extend the low `width` bits of value to 64 bits. */
inline int64_t
signExtend(uint64_t value, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<int64_t>(value);
    uint64_t sign = 1ULL << (width - 1);
    return static_cast<int64_t>((value ^ sign) - sign);
}

/** True if the low `width` bits of value have the sign bit set. */
inline bool
signBit(uint64_t value, unsigned width)
{
    return width != 0 && ((value >> (width - 1)) & 1);
}

/**
 * Known-bits lattice element: bit i of `zeros` set means bit i is known
 * to be 0; bit i of `ones` set means known 1. Disjoint by invariant.
 */
struct KnownBits
{
    uint64_t zeros = 0;
    uint64_t ones = 0;

    /** All bits within `width` known? */
    bool
    allKnown(unsigned width) const
    {
        return ((zeros | ones) & lowMask(width)) == lowMask(width);
    }

    uint64_t value() const { return ones; }

    static KnownBits
    constant(uint64_t v, unsigned width)
    {
        return {~v & lowMask(width), v & lowMask(width)};
    }

    static KnownBits unknown() { return {0, 0}; }
};

} // namespace s2e

#endif // S2E_SUPPORT_BITOPS_HH
