/**
 * @file
 * Status-message and error-exit helpers, following the gem5 idiom:
 * panic() for internal platform bugs (abort), fatal() for user error
 * (clean exit), warn()/inform() for non-fatal status.
 */

#ifndef S2E_SUPPORT_LOGGING_HH
#define S2E_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <string>

namespace s2e {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/** Get/set the global verbosity level (default: Warn). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/**
 * Report an internal platform bug and abort. Never returns.
 * Use for conditions that cannot happen unless s2e-lite itself is broken.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, invalid guest
 * image, ...) and exit(1). Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report developer debugging detail (only at LogLevel::Debug). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
std::string vstrprintf(const char *fmt, va_list ap);

} // namespace s2e

/**
 * Internal invariant check that survives NDEBUG builds; calls panic()
 * with location information on failure.
 */
#define S2E_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::s2e::panic("assertion '%s' failed at %s:%d: %s", #cond,       \
                         __FILE__, __LINE__,                                \
                         ::s2e::strprintf(__VA_ARGS__).c_str());            \
        }                                                                   \
    } while (0)

#endif // S2E_SUPPORT_LOGGING_HH
