#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace s2e {

namespace {
LogLevel g_level = LogLevel::Warn;

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::string msg = vstrprintf(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Inform)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("debug", fmt, ap);
    va_end(ap);
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(n + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), n);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace s2e
