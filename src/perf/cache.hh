/**
 * @file
 * Performance-model substrate: set-associative caches with LRU
 * replacement, a TLB, and a demand-paging resident-set model.
 *
 * PROFS (the multi-path in-vivo performance profiler of §6.1.3)
 * simulates a configurable hierarchy per execution path: the models
 * here are plain copyable values so they clone with the path's
 * PluginState. The default configuration matches the paper: 64 KB
 * I1/D1 (64-byte lines, 2-way) + 1 MB L2 (64-byte lines, 4-way).
 */

#ifndef S2E_PERF_CACHE_HH
#define S2E_PERF_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace s2e::perf {

/** One set-associative cache level with LRU replacement. */
class Cache
{
  public:
    struct Config {
        std::string name = "cache";
        uint32_t size = 64 * 1024;
        uint32_t lineSize = 64;
        uint32_t associativity = 2;
    };

    explicit Cache(Config config);

    /** Access one address; returns true on hit (and updates LRU). */
    bool access(uint32_t addr);

    void reset();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    const Config &config() const { return config_; }

  private:
    struct Way {
        uint32_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    Config config_;
    uint32_t numSets_;
    uint32_t lineBits_;
    std::vector<Way> ways_; ///< numSets_ * associativity
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** A fully-associative TLB over fixed-size pages, LRU replacement. */
class Tlb
{
  public:
    explicit Tlb(unsigned entries = 64, uint32_t page_size = 4096);

    bool access(uint32_t addr);
    void reset();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Entry {
        uint32_t vpn = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };
    std::vector<Entry> entries_;
    uint32_t pageBits_;
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/**
 * Demand-paging model: the first touch of each page is a (soft) page
 * fault; an LRU resident-set limit models memory pressure evictions.
 */
class DemandPager
{
  public:
    explicit DemandPager(unsigned resident_pages = 1024,
                         uint32_t page_size = 4096);

    /** Touch an address; returns true if this access page-faulted. */
    bool access(uint32_t addr);
    void reset();

    uint64_t faults() const { return faults_; }

  private:
    struct Entry {
        uint32_t vpn = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };
    std::vector<Entry> frames_;
    uint32_t pageBits_;
    uint64_t clock_ = 0;
    uint64_t faults_ = 0;
};

/** The full hierarchy PROFS simulates per path. */
class MemoryHierarchy
{
  public:
    struct Config {
        Cache::Config l1i{"I1", 64 * 1024, 64, 2};
        Cache::Config l1d{"D1", 64 * 1024, 64, 2};
        Cache::Config l2{"L2", 1024 * 1024, 64, 4};
        unsigned tlbEntries = 64;
        unsigned residentPages = 1024;
    };

    MemoryHierarchy() : MemoryHierarchy(Config()) {}
    explicit MemoryHierarchy(const Config &config);

    /** Instruction fetch at pc. */
    void fetch(uint32_t pc);
    /** Data access. */
    void data(uint32_t addr);

    uint64_t l1iMisses() const { return l1i_.misses(); }
    uint64_t l1dMisses() const { return l1d_.misses(); }
    uint64_t l2Misses() const { return l2_.misses(); }
    uint64_t totalCacheMisses() const
    {
        return l1i_.misses() + l1d_.misses() + l2_.misses();
    }
    uint64_t tlbMisses() const { return tlb_.misses(); }
    uint64_t pageFaults() const { return pager_.faults(); }

  private:
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Tlb tlb_;
    DemandPager pager_;
};

} // namespace s2e::perf

#endif // S2E_PERF_CACHE_HH
