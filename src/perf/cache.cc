#include "perf/cache.hh"

#include "support/logging.hh"

namespace s2e::perf {

namespace {
unsigned
log2floor(uint32_t v)
{
    S2E_ASSERT(v != 0 && (v & (v - 1)) == 0, "value %u not a power of two",
               v);
    return 31 - __builtin_clz(v);
}
} // namespace

Cache::Cache(Config config) : config_(std::move(config))
{
    S2E_ASSERT(config_.associativity >= 1, "associativity must be >= 1");
    lineBits_ = log2floor(config_.lineSize);
    uint32_t lines = config_.size / config_.lineSize;
    S2E_ASSERT(lines % config_.associativity == 0,
               "cache geometry mismatch");
    numSets_ = lines / config_.associativity;
    S2E_ASSERT((numSets_ & (numSets_ - 1)) == 0,
               "set count must be a power of two");
    ways_.assign(static_cast<size_t>(numSets_) * config_.associativity,
                 Way());
}

bool
Cache::access(uint32_t addr)
{
    clock_++;
    uint32_t line = addr >> lineBits_;
    uint32_t set = line & (numSets_ - 1);
    uint32_t tag = line >> log2floor(numSets_);
    Way *base = &ways_[static_cast<size_t>(set) * config_.associativity];

    Way *victim = base;
    for (uint32_t w = 0; w < config_.associativity; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = clock_;
            hits_++;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    misses_++;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock_;
    return false;
}

void
Cache::reset()
{
    for (auto &w : ways_)
        w.valid = false;
    clock_ = hits_ = misses_ = 0;
}

Tlb::Tlb(unsigned entries, uint32_t page_size)
    : entries_(entries), pageBits_(log2floor(page_size))
{
}

bool
Tlb::access(uint32_t addr)
{
    clock_++;
    uint32_t vpn = addr >> pageBits_;
    Entry *victim = &entries_[0];
    for (auto &e : entries_) {
        if (e.valid && e.vpn == vpn) {
            e.lastUse = clock_;
            hits_++;
            return true;
        }
        if (!e.valid)
            victim = &e;
        else if (victim->valid && e.lastUse < victim->lastUse)
            victim = &e;
    }
    misses_++;
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = clock_;
    return false;
}

void
Tlb::reset()
{
    for (auto &e : entries_)
        e.valid = false;
    clock_ = hits_ = misses_ = 0;
}

DemandPager::DemandPager(unsigned resident_pages, uint32_t page_size)
    : frames_(resident_pages), pageBits_(log2floor(page_size))
{
}

bool
DemandPager::access(uint32_t addr)
{
    clock_++;
    uint32_t vpn = addr >> pageBits_;
    Entry *victim = &frames_[0];
    for (auto &f : frames_) {
        if (f.valid && f.vpn == vpn) {
            f.lastUse = clock_;
            return false;
        }
        if (!f.valid)
            victim = &f;
        else if (victim->valid && f.lastUse < victim->lastUse)
            victim = &f;
    }
    faults_++;
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = clock_;
    return true;
}

void
DemandPager::reset()
{
    for (auto &f : frames_)
        f.valid = false;
    clock_ = 0;
    faults_ = 0;
}

MemoryHierarchy::MemoryHierarchy(const Config &config)
    : l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2),
      tlb_(config.tlbEntries), pager_(config.residentPages)
{
}

void
MemoryHierarchy::fetch(uint32_t pc)
{
    tlb_.access(pc);
    pager_.access(pc);
    if (!l1i_.access(pc))
        l2_.access(pc);
}

void
MemoryHierarchy::data(uint32_t addr)
{
    tlb_.access(addr);
    pager_.access(addr);
    if (!l1d_.access(addr))
        l2_.access(addr);
}

} // namespace s2e::perf
