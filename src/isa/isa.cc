#include "isa/isa.hh"

#include <cstring>

#include "support/logging.hh"

namespace s2e::isa {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Hlt: return "hlt";
      case Opcode::Ret: return "ret";
      case Opcode::Iret: return "iret";
      case Opcode::Cli: return "cli";
      case Opcode::Sti: return "sti";
      case Opcode::Push: return "push";
      case Opcode::Pop: return "pop";
      case Opcode::JmpR: return "jmpr";
      case Opcode::CallR: return "callr";
      case Opcode::NotR: return "not";
      case Opcode::NegR: return "neg";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Sar: return "sar";
      case Opcode::Mul: return "mul";
      case Opcode::UDiv: return "udiv";
      case Opcode::SDiv: return "sdiv";
      case Opcode::URem: return "urem";
      case Opcode::SRem: return "srem";
      case Opcode::Cmp: return "cmp";
      case Opcode::Test: return "test";
      case Opcode::MovI: return "movi";
      case Opcode::AddI: return "addi";
      case Opcode::SubI: return "subi";
      case Opcode::AndI: return "andi";
      case Opcode::OrI: return "ori";
      case Opcode::XorI: return "xori";
      case Opcode::ShlI: return "shli";
      case Opcode::ShrI: return "shri";
      case Opcode::SarI: return "sari";
      case Opcode::MulI: return "muli";
      case Opcode::CmpI: return "cmpi";
      case Opcode::TestI: return "testi";
      case Opcode::Ldb: return "ldb";
      case Opcode::Ldbs: return "ldbs";
      case Opcode::Ldh: return "ldh";
      case Opcode::Ldhs: return "ldhs";
      case Opcode::Ldw: return "ldw";
      case Opcode::Stb: return "stb";
      case Opcode::Sth: return "sth";
      case Opcode::Stw: return "stw";
      case Opcode::Jmp: return "jmp";
      case Opcode::Call: return "call";
      case Opcode::Jcc: return "jcc";
      case Opcode::Int: return "int";
      case Opcode::InI: return "ini";
      case Opcode::OutI: return "outi";
      case Opcode::InR: return "inr";
      case Opcode::OutR: return "outr";
      case Opcode::S2SymMem: return "s2e_symmem";
      case Opcode::S2SymReg: return "s2e_symreg";
      case Opcode::S2SymRange: return "s2e_symrange";
      case Opcode::S2Ena: return "s2e_ena";
      case Opcode::S2Dis: return "s2e_dis";
      case Opcode::S2Out: return "s2e_out";
      case Opcode::S2Kill: return "s2e_kill";
      case Opcode::S2Assert: return "s2e_assert";
      case Opcode::S2Concrete: return "s2e_concrete";
      case Opcode::S2Merge: return "s2e_merge";
    }
    return "<bad>";
}

const char *
condName(Cond cc)
{
    switch (cc) {
      case Cond::Eq: return "eq";
      case Cond::Ne: return "ne";
      case Cond::Ult: return "ult";
      case Cond::Uge: return "uge";
      case Cond::Ule: return "ule";
      case Cond::Ugt: return "ugt";
      case Cond::Slt: return "slt";
      case Cond::Sge: return "sge";
      case Cond::Sle: return "sle";
      case Cond::Sgt: return "sgt";
    }
    return "<bad>";
}

unsigned
instrLength(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Hlt:
      case Opcode::Ret:
      case Opcode::Iret:
      case Opcode::Cli:
      case Opcode::Sti:
      case Opcode::S2Ena:
      case Opcode::S2Dis:
      case Opcode::S2Merge:
        return 1;
      case Opcode::Push:
      case Opcode::Pop:
      case Opcode::JmpR:
      case Opcode::CallR:
      case Opcode::NotR:
      case Opcode::NegR:
      case Opcode::S2SymReg:
      case Opcode::S2Out:
      case Opcode::S2Kill:
      case Opcode::S2Assert:
      case Opcode::S2Concrete:
      case Opcode::Int:
        return 2;
      case Opcode::Mov:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
      case Opcode::Mul:
      case Opcode::UDiv:
      case Opcode::SDiv:
      case Opcode::URem:
      case Opcode::SRem:
      case Opcode::Cmp:
      case Opcode::Test:
      case Opcode::InR:
      case Opcode::OutR:
      case Opcode::S2SymMem:
        return 3;
      case Opcode::InI:
      case Opcode::OutI:
        return 4;
      case Opcode::Jmp:
      case Opcode::Call:
        return 5;
      case Opcode::MovI:
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::ShlI:
      case Opcode::ShrI:
      case Opcode::SarI:
      case Opcode::MulI:
      case Opcode::CmpI:
      case Opcode::TestI:
      case Opcode::Jcc:
        return 6;
      case Opcode::Ldb:
      case Opcode::Ldbs:
      case Opcode::Ldh:
      case Opcode::Ldhs:
      case Opcode::Ldw:
      case Opcode::Stb:
      case Opcode::Sth:
      case Opcode::Stw:
        return 7;
      case Opcode::S2SymRange:
        return 10;
    }
    return 0;
}

bool
isValidOpcode(uint8_t byte)
{
    auto op = static_cast<Opcode>(byte);
    return instrLength(op) != 0 && opcodeName(op)[0] != '<';
}

namespace {
uint32_t
read32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v; // host is little-endian (x86/ARM little)
}

uint16_t
read16(const uint8_t *p)
{
    uint16_t v;
    std::memcpy(&v, p, 2);
    return v;
}
} // namespace

bool
decode(const uint8_t *buf, size_t avail, Instruction &out)
{
    if (avail < 1 || !isValidOpcode(buf[0]))
        return false;
    auto op = static_cast<Opcode>(buf[0]);
    unsigned len = instrLength(op);
    if (avail < len)
        return false;

    out = Instruction();
    out.op = op;
    out.length = static_cast<uint8_t>(len);

    switch (len) {
      case 1:
        break;
      case 2:
        if (op == Opcode::Int || op == Opcode::S2Kill)
            out.imm = buf[1];
        else
            out.r1 = buf[1];
        break;
      case 3:
        out.r1 = buf[1];
        out.r2 = buf[2];
        break;
      case 4: // InI / OutI: [op][r][imm16]
        out.r1 = buf[1];
        out.imm = read16(buf + 2);
        break;
      case 5: // Jmp / Call: [op][imm32]
        out.imm = read32(buf + 1);
        break;
      case 6:
        if (op == Opcode::Jcc) {
            if (buf[1] > static_cast<uint8_t>(Cond::Sgt))
                return false;
            out.cc = static_cast<Cond>(buf[1]);
            out.imm = read32(buf + 2);
        } else { // reg, imm32
            out.r1 = buf[1];
            out.imm = read32(buf + 2);
        }
        break;
      case 7: // memory: [op][r1][r2][imm32]
        out.r1 = buf[1];
        out.r2 = buf[2];
        out.imm = read32(buf + 3);
        break;
      case 10: // S2SymRange: [op][r][lo32][hi32]
        out.r1 = buf[1];
        out.imm = read32(buf + 2);
        out.imm2 = read32(buf + 6);
        break;
      default:
        return false;
    }
    if (out.r1 >= kNumRegs || out.r2 >= kNumRegs)
        return false;
    return true;
}

void
encode(const Instruction &instr, std::vector<uint8_t> &out)
{
    unsigned len = instrLength(instr.op);
    S2E_ASSERT(len != 0, "encode of invalid opcode");
    out.push_back(static_cast<uint8_t>(instr.op));
    auto put32 = [&](uint32_t v) {
        out.push_back(v & 0xFF);
        out.push_back((v >> 8) & 0xFF);
        out.push_back((v >> 16) & 0xFF);
        out.push_back((v >> 24) & 0xFF);
    };
    switch (len) {
      case 1:
        break;
      case 2:
        if (instr.op == Opcode::Int || instr.op == Opcode::S2Kill)
            out.push_back(instr.imm & 0xFF);
        else
            out.push_back(instr.r1);
        break;
      case 3:
        out.push_back(instr.r1);
        out.push_back(instr.r2);
        break;
      case 4:
        out.push_back(instr.r1);
        out.push_back(instr.imm & 0xFF);
        out.push_back((instr.imm >> 8) & 0xFF);
        break;
      case 5:
        put32(instr.imm);
        break;
      case 6:
        if (instr.op == Opcode::Jcc)
            out.push_back(static_cast<uint8_t>(instr.cc));
        else
            out.push_back(instr.r1);
        put32(instr.imm);
        break;
      case 7:
        out.push_back(instr.r1);
        out.push_back(instr.r2);
        put32(instr.imm);
        break;
      case 10:
        out.push_back(instr.r1);
        put32(instr.imm);
        put32(instr.imm2);
        break;
    }
}

bool
isBlockTerminator(Opcode op)
{
    switch (op) {
      case Opcode::Jmp:
      case Opcode::Jcc:
      case Opcode::JmpR:
      case Opcode::Call:
      case Opcode::CallR:
      case Opcode::Ret:
      case Opcode::Iret:
      case Opcode::Int:
      case Opcode::Hlt:
      case Opcode::S2Kill:
      // A merge point ends the block: the engine must regain control
      // to park the state before any further instruction executes.
      case Opcode::S2Merge:
        return true;
      default:
        return false;
    }
}

std::string
Instruction::toString() const
{
    auto reg = [](uint8_t r) {
        return r == kRegSp ? std::string("sp") : strprintf("r%u", r);
    };
    switch (op) {
      case Opcode::Nop:
      case Opcode::Hlt:
      case Opcode::Ret:
      case Opcode::Iret:
      case Opcode::Cli:
      case Opcode::Sti:
      case Opcode::S2Ena:
      case Opcode::S2Dis:
      case Opcode::S2Merge:
        return opcodeName(op);
      case Opcode::Push:
      case Opcode::Pop:
      case Opcode::JmpR:
      case Opcode::CallR:
      case Opcode::NotR:
      case Opcode::NegR:
      case Opcode::S2SymReg:
      case Opcode::S2Out:
      case Opcode::S2Assert:
      case Opcode::S2Concrete:
        return strprintf("%s %s", opcodeName(op), reg(r1).c_str());
      case Opcode::Int:
      case Opcode::S2Kill:
        return strprintf("%s 0x%x", opcodeName(op), imm);
      case Opcode::Jmp:
      case Opcode::Call:
        return strprintf("%s 0x%x", opcodeName(op), imm);
      case Opcode::Jcc:
        return strprintf("j%s 0x%x", condName(cc), imm);
      case Opcode::InI:
        return strprintf("in %s, 0x%x", reg(r1).c_str(), imm);
      case Opcode::OutI:
        return strprintf("out 0x%x, %s", imm, reg(r1).c_str());
      case Opcode::InR:
        return strprintf("in %s, %s", reg(r1).c_str(), reg(r2).c_str());
      case Opcode::OutR:
        return strprintf("out %s, %s", reg(r1).c_str(), reg(r2).c_str());
      case Opcode::S2SymMem:
        return strprintf("s2e_symmem %s, %s", reg(r1).c_str(),
                         reg(r2).c_str());
      case Opcode::S2SymRange:
        return strprintf("s2e_symrange %s, %u, %u", reg(r1).c_str(), imm,
                         imm2);
      case Opcode::Ldb:
      case Opcode::Ldbs:
      case Opcode::Ldh:
      case Opcode::Ldhs:
      case Opcode::Ldw:
        return strprintf("%s %s, [%s%+d]", opcodeName(op), reg(r1).c_str(),
                         reg(r2).c_str(), static_cast<int32_t>(imm));
      case Opcode::Stb:
      case Opcode::Sth:
      case Opcode::Stw:
        return strprintf("%s [%s%+d], %s", opcodeName(op), reg(r2).c_str(),
                         static_cast<int32_t>(imm), reg(r1).c_str());
      default:
        if (instrLength(op) == 3)
            return strprintf("%s %s, %s", opcodeName(op), reg(r1).c_str(),
                             reg(r2).c_str());
        if (instrLength(op) == 6)
            return strprintf("%s %s, 0x%x", opcodeName(op), reg(r1).c_str(),
                             imm);
        return opcodeName(op);
    }
}

} // namespace s2e::isa
