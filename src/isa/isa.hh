/**
 * @file
 * The gisa guest instruction set.
 *
 * gisa is the 32-bit guest ISA executed by the s2e-lite VM. It stands
 * in for x86 in the original S2E: it has condition flags (producing
 * the bitfield-heavy symbolic expressions the §5 simplifier targets),
 * variable-length encoding (exercising the DBT), port I/O and MMIO
 * (the device boundary), software and hardware interrupts, and the
 * custom S2E opcodes of paper §4.2 (S2SYM / S2ENA / S2DIS / S2OUT...).
 *
 * Registers: r0..r15 (r15 doubles as the stack pointer, alias `sp`),
 * plus pc and the four condition flags Z N C V. Little-endian memory.
 */

#ifndef S2E_ISA_ISA_HH
#define S2E_ISA_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace s2e::isa {

/** Number of general-purpose registers; r15 is the stack pointer. */
constexpr unsigned kNumRegs = 16;
constexpr unsigned kRegSp = 15;

/** Opcode space. Encodings are byte-granular, see instrLength(). */
enum class Opcode : uint8_t {
    // Class A: no operands (1 byte)
    Nop = 0x00,
    Hlt = 0x01,
    Ret = 0x02,
    Iret = 0x03,
    Cli = 0x04,
    Sti = 0x05,

    // Class B: one register (2 bytes)
    Push = 0x08,
    Pop = 0x09,
    JmpR = 0x0A,
    CallR = 0x0B,
    NotR = 0x0C,
    NegR = 0x0D,

    // Class C: reg, reg (3 bytes)
    Mov = 0x10,
    Add = 0x11,
    Sub = 0x12,
    And = 0x13,
    Or = 0x14,
    Xor = 0x15,
    Shl = 0x16,
    Shr = 0x17,
    Sar = 0x18,
    Mul = 0x19,
    UDiv = 0x1A,
    SDiv = 0x1B,
    URem = 0x1C,
    SRem = 0x1D,
    Cmp = 0x1E,
    Test = 0x1F,

    // Class D: reg, imm32 (6 bytes)
    MovI = 0x30,
    AddI = 0x31,
    SubI = 0x32,
    AndI = 0x33,
    OrI = 0x34,
    XorI = 0x35,
    ShlI = 0x36,
    ShrI = 0x37,
    SarI = 0x38,
    MulI = 0x39,
    CmpI = 0x3A,
    TestI = 0x3B,

    // Class E: memory, reg + [reg + imm32] (7 bytes)
    Ldb = 0x40,  ///< load byte, zero-extend
    Ldbs = 0x41, ///< load byte, sign-extend
    Ldh = 0x42,  ///< load half, zero-extend
    Ldhs = 0x43, ///< load half, sign-extend
    Ldw = 0x44,  ///< load word
    Stb = 0x45,
    Sth = 0x46,
    Stw = 0x47,

    // Class F: imm32 (5 bytes)
    Jmp = 0x50,
    Call = 0x51,

    // Jcc: cc byte + imm32 (6 bytes)
    Jcc = 0x52,

    // Int: imm8 (2 bytes)
    Int = 0x53,

    // Port I/O
    InI = 0x54,  ///< in r, imm16       (4 bytes)
    OutI = 0x55, ///< out imm16, r      (4 bytes)
    InR = 0x56,  ///< in r1, r2         (3 bytes)
    OutR = 0x57, ///< out r1, r2        (3 bytes)

    // S2E custom opcodes (paper §4.2)
    S2SymMem = 0xF0,   ///< [op][raddr][rlen]: make memory symbolic (3)
    S2SymReg = 0xF1,   ///< [op][r]: make register symbolic (2)
    S2SymRange = 0xF2, ///< [op][r][lo32][hi32]: constrained symbolic (10)
    S2Ena = 0xF3,      ///< enable multi-path execution (1)
    S2Dis = 0xF4,      ///< disable multi-path execution (1)
    S2Out = 0xF5,      ///< [op][r]: log value of r (2)
    S2Kill = 0xF6,     ///< [op][imm8 status]: terminate this path (2)
    S2Assert = 0xF7,   ///< [op][r]: report bug if r == 0 (2)
    S2Concrete = 0xF8, ///< [op][r]: force-concretize register (2)
    S2Merge = 0xF9,    ///< merge point: coalesce sibling paths (1)
};

/** Branch condition codes for Jcc. */
enum class Cond : uint8_t {
    Eq = 0,  ///< Z
    Ne = 1,  ///< !Z
    Ult = 2, ///< C          (aka jb)
    Uge = 3, ///< !C         (aka jae)
    Ule = 4, ///< C | Z      (aka jbe)
    Ugt = 5, ///< !C & !Z    (aka ja)
    Slt = 6, ///< N ^ V
    Sge = 7, ///< !(N ^ V)
    Sle = 8, ///< Z | (N ^ V)
    Sgt = 9, ///< !Z & !(N ^ V)
};

const char *opcodeName(Opcode op);
const char *condName(Cond cc);

/** A decoded instruction. */
struct Instruction {
    Opcode op = Opcode::Nop;
    uint8_t r1 = 0;
    uint8_t r2 = 0;
    Cond cc = Cond::Eq;
    uint32_t imm = 0;
    uint32_t imm2 = 0;  ///< second immediate (S2SymRange hi bound)
    uint8_t length = 1; ///< encoded size in bytes

    /** Disassemble to text. */
    std::string toString() const;
};

/** Encoded length of an opcode's instruction, in bytes. */
unsigned instrLength(Opcode op);

/** True if the byte is a defined opcode. */
bool isValidOpcode(uint8_t byte);

/**
 * Decode one instruction from a byte buffer.
 * @return true on success; false on invalid opcode or short buffer.
 */
bool decode(const uint8_t *buf, size_t avail, Instruction &out);

/** Encode an instruction; appends to out. */
void encode(const Instruction &instr, std::vector<uint8_t> &out);

/** True for instructions that end a translation block. */
bool isBlockTerminator(Opcode op);

} // namespace s2e::isa

#endif // S2E_ISA_ISA_HH
