#include "isa/assembler.hh"

#include <algorithm>
#include <cctype>
#include <optional>

#include "support/logging.hh"

namespace s2e::isa {

size_t
Program::size() const
{
    size_t total = 0;
    for (const auto &s : sections)
        total += s.bytes.size();
    return total;
}

namespace {

std::string
trim(const std::string &s)
{
    size_t a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    size_t z = s.find_last_not_of(" \t\r");
    return s.substr(a, z - a + 1);
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

/** Split an operand list on commas (respecting quotes and brackets). */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    bool in_quote = false;
    int bracket = 0;
    for (char c : s) {
        if (c == '"' )
            in_quote = !in_quote;
        if (!in_quote) {
            if (c == '[')
                bracket++;
            if (c == ']')
                bracket--;
            if (c == ',' && bracket == 0) {
                out.push_back(trim(cur));
                cur.clear();
                continue;
            }
        }
        cur += c;
    }
    cur = trim(cur);
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::optional<uint8_t>
parseReg(const std::string &tok)
{
    std::string t = lower(trim(tok));
    if (t == "sp")
        return kRegSp;
    if (t.size() >= 2 && t[0] == 'r') {
        unsigned v = 0;
        for (size_t i = 1; i < t.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(t[i])))
                return std::nullopt;
            v = v * 10 + (t[i] - '0');
        }
        if (v < kNumRegs)
            return static_cast<uint8_t>(v);
    }
    return std::nullopt;
}

/** A line item produced by pass 1. */
struct Item {
    enum class Type { Instr, Data } type = Type::Instr;
    unsigned line = 0;
    uint32_t addr = 0;
    // Instr:
    Opcode op = Opcode::Nop;
    Cond cc = Cond::Eq;
    std::optional<uint8_t> r1, r2;
    std::string immExpr;  ///< expression for imm
    std::string imm2Expr; ///< expression for imm2
    // Data:
    unsigned elemSize = 0; ///< 1, 2 or 4; 0 for raw bytes
    std::vector<std::string> dataExprs;
    std::vector<uint8_t> rawBytes;
};

struct CondMnemonic {
    const char *name;
    Cond cc;
};

const CondMnemonic kCondMnemonics[] = {
    {"jeq", Cond::Eq},   {"jz", Cond::Eq},   {"jne", Cond::Ne},
    {"jnz", Cond::Ne},   {"jb", Cond::Ult},  {"jult", Cond::Ult},
    {"jae", Cond::Uge},  {"juge", Cond::Uge}, {"jbe", Cond::Ule},
    {"jule", Cond::Ule}, {"ja", Cond::Ugt},  {"jugt", Cond::Ugt},
    {"jlt", Cond::Slt},  {"jslt", Cond::Slt}, {"jge", Cond::Sge},
    {"jsge", Cond::Sge}, {"jle", Cond::Sle}, {"jsle", Cond::Sle},
    {"jgt", Cond::Sgt},  {"jsgt", Cond::Sgt},
};

/** reg/reg vs reg/imm opcode pairs. */
struct AluMnemonic {
    const char *name;
    Opcode regForm;
    Opcode immForm; ///< Nop if no immediate form
};

const AluMnemonic kAluMnemonics[] = {
    {"mov", Opcode::Mov, Opcode::MovI},
    {"add", Opcode::Add, Opcode::AddI},
    {"sub", Opcode::Sub, Opcode::SubI},
    {"and", Opcode::And, Opcode::AndI},
    {"or", Opcode::Or, Opcode::OrI},
    {"xor", Opcode::Xor, Opcode::XorI},
    {"shl", Opcode::Shl, Opcode::ShlI},
    {"shr", Opcode::Shr, Opcode::ShrI},
    {"sar", Opcode::Sar, Opcode::SarI},
    {"mul", Opcode::Mul, Opcode::MulI},
    {"cmp", Opcode::Cmp, Opcode::CmpI},
    {"test", Opcode::Test, Opcode::TestI},
    {"udiv", Opcode::UDiv, Opcode::Nop},
    {"sdiv", Opcode::SDiv, Opcode::Nop},
    {"urem", Opcode::URem, Opcode::Nop},
    {"srem", Opcode::SRem, Opcode::Nop},
};

struct MemMnemonic {
    const char *name;
    Opcode op;
    bool isStore;
};

const MemMnemonic kMemMnemonics[] = {
    {"ldb", Opcode::Ldb, false},  {"ldbs", Opcode::Ldbs, false},
    {"ldh", Opcode::Ldh, false},  {"ldhs", Opcode::Ldhs, false},
    {"ldw", Opcode::Ldw, false},  {"stb", Opcode::Stb, true},
    {"sth", Opcode::Sth, true},   {"stw", Opcode::Stw, true},
};

/** The assembler driver: two passes over pre-parsed items. */
class Assembler
{
  public:
    Program
    run(const std::string &source)
    {
        pass1(source);
        pass2();
        program_.symbols = symbols_;
        if (!entryName_.empty()) {
            auto it = symbols_.find(entryName_);
            if (it == symbols_.end())
                throw AsmError(entryLine_,
                               "undefined entry symbol '" + entryName_ +
                                   "'");
            program_.entry = it->second;
        }
        return std::move(program_);
    }

  private:
    // ----- Expression evaluation -----------------------------------

    struct ExprParser {
        const std::string &s;
        size_t pos = 0;
        const std::map<std::string, uint32_t> &syms;
        unsigned line;
        bool allowUndef;
        bool sawUndef = false;

        void
        skipWs()
        {
            while (pos < s.size() && std::isspace(
                                         static_cast<unsigned char>(s[pos])))
                pos++;
        }

        int64_t
        parsePrimary()
        {
            skipWs();
            if (pos >= s.size())
                throw AsmError(line, "expected expression in '" + s + "'");
            char c = s[pos];
            if (c == '(') {
                pos++;
                int64_t v = parseExpr();
                skipWs();
                if (pos >= s.size() || s[pos] != ')')
                    throw AsmError(line, "missing ')' in '" + s + "'");
                pos++;
                return v;
            }
            if (c == '-') {
                pos++;
                return -parsePrimary();
            }
            if (c == '~') {
                pos++;
                return ~parsePrimary();
            }
            if (c == '\'') {
                // character literal, with \n \t \0 \\ escapes
                pos++;
                if (pos >= s.size())
                    throw AsmError(line, "bad char literal");
                char v = s[pos++];
                if (v == '\\' && pos < s.size()) {
                    char e = s[pos++];
                    switch (e) {
                      case 'n': v = '\n'; break;
                      case 't': v = '\t'; break;
                      case '0': v = '\0'; break;
                      case 'r': v = '\r'; break;
                      default: v = e; break;
                    }
                }
                if (pos >= s.size() || s[pos] != '\'')
                    throw AsmError(line, "unterminated char literal");
                pos++;
                return static_cast<unsigned char>(v);
            }
            if (std::isdigit(static_cast<unsigned char>(c))) {
                size_t used = 0;
                int64_t v;
                std::string rest = s.substr(pos);
                try {
                    if (rest.size() > 2 && rest[0] == '0' &&
                        (rest[1] == 'x' || rest[1] == 'X')) {
                        v = static_cast<int64_t>(
                            std::stoull(rest.substr(2), &used, 16));
                        used += 2;
                    } else if (rest.size() > 2 && rest[0] == '0' &&
                               (rest[1] == 'b' || rest[1] == 'B')) {
                        v = static_cast<int64_t>(
                            std::stoull(rest.substr(2), &used, 2));
                        used += 2;
                    } else {
                        v = static_cast<int64_t>(
                            std::stoull(rest, &used, 10));
                    }
                } catch (const std::exception &) {
                    throw AsmError(line, "bad number in '" + s + "'");
                }
                pos += used;
                return v;
            }
            if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
                c == '.') {
                size_t start = pos;
                while (pos < s.size() &&
                       (std::isalnum(static_cast<unsigned char>(s[pos])) ||
                        s[pos] == '_' || s[pos] == '.'))
                    pos++;
                std::string name = s.substr(start, pos - start);
                auto it = syms.find(name);
                if (it == syms.end()) {
                    if (allowUndef) {
                        sawUndef = true;
                        return 0;
                    }
                    throw AsmError(line, "undefined symbol '" + name + "'");
                }
                return it->second;
            }
            throw AsmError(line, "unexpected character '" +
                                     std::string(1, c) + "' in '" + s + "'");
        }

        int64_t
        parseExpr()
        {
            int64_t v = parsePrimary();
            for (;;) {
                skipWs();
                if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) {
                    char op = s[pos++];
                    int64_t rhs = parsePrimary();
                    v = op == '+' ? v + rhs : v - rhs;
                } else {
                    break;
                }
            }
            return v;
        }
    };

    uint32_t
    evalExpr(const std::string &text, unsigned line, bool allowUndef = false,
             bool *sawUndef = nullptr)
    {
        ExprParser p{text, 0, symbols_, line, allowUndef};
        int64_t v = p.parseExpr();
        p.skipWs();
        if (p.pos != text.size())
            throw AsmError(line, "trailing junk in expression '" + text +
                                     "'");
        if (sawUndef)
            *sawUndef = p.sawUndef;
        return static_cast<uint32_t>(v);
    }

    // ----- Pass 1: sizing, labels, directives -----------------------

    void
    pass1(const std::string &source)
    {
        uint32_t pc = 0;
        unsigned line_no = 0;
        size_t start = 0;
        while (start <= source.size()) {
            size_t end = source.find('\n', start);
            std::string raw = source.substr(
                start, end == std::string::npos ? std::string::npos
                                                : end - start);
            start = end == std::string::npos ? source.size() + 1 : end + 1;
            line_no++;

            // Strip comments, respecting string and char literals
            // (';' is both the comment marker and a valid char).
            bool in_quote = false;
            bool in_char = false;
            for (size_t i = 0; i < raw.size(); ++i) {
                char c = raw[i];
                if (c == '\\' && (in_quote || in_char)) {
                    i++; // skip the escaped character
                    continue;
                }
                if (c == '"' && !in_char)
                    in_quote = !in_quote;
                else if (c == '\'' && !in_quote)
                    in_char = !in_char;
                if (!in_quote && !in_char && (c == ';' || c == '#')) {
                    raw = raw.substr(0, i);
                    break;
                }
            }
            std::string text = trim(raw);

            // Labels (possibly several on one line).
            for (;;) {
                size_t colon = text.find(':');
                if (colon == std::string::npos)
                    break;
                std::string head = trim(text.substr(0, colon));
                // Only treat as label when head is a valid identifier.
                bool ident = !head.empty();
                for (char c : head)
                    if (!std::isalnum(static_cast<unsigned char>(c)) &&
                        c != '_' && c != '.')
                        ident = false;
                if (!ident)
                    break;
                if (symbols_.count(head))
                    throw AsmError(line_no,
                                   "duplicate label '" + head + "'");
                symbols_[head] = pc;
                text = trim(text.substr(colon + 1));
            }
            if (text.empty())
                continue;

            // Mnemonic and operands.
            size_t sp = text.find_first_of(" \t");
            std::string mnem = lower(
                sp == std::string::npos ? text : text.substr(0, sp));
            std::string rest =
                sp == std::string::npos ? "" : trim(text.substr(sp + 1));
            std::vector<std::string> ops = splitOperands(rest);

            if (mnem[0] == '.') {
                pc = directive(mnem, ops, rest, pc, line_no);
                continue;
            }

            Item item = parseInstr(mnem, ops, line_no);
            item.addr = pc;
            pc += instrLength(item.op);
            items_.push_back(std::move(item));
        }
    }

    uint32_t
    directive(const std::string &mnem, const std::vector<std::string> &ops,
              const std::string &rest, uint32_t pc, unsigned line)
    {
        if (mnem == ".org") {
            if (ops.size() != 1)
                throw AsmError(line, ".org needs one operand");
            return evalExpr(ops[0], line); // sections derived in pass 2
        }
        if (mnem == ".entry") {
            if (ops.size() != 1)
                throw AsmError(line, ".entry needs one symbol");
            entryName_ = ops[0];
            entryLine_ = line;
            return pc;
        }
        if (mnem == ".equ") {
            if (ops.size() != 2)
                throw AsmError(line, ".equ needs name, value");
            uint32_t value = evalExpr(ops[1], line);
            auto it = symbols_.find(ops[0]);
            if (it != symbols_.end()) {
                // Concatenated sources may share constants; only a
                // conflicting redefinition is an error.
                if (it->second != value)
                    throw AsmError(line, "conflicting redefinition of '" +
                                             ops[0] + "'");
                return pc;
            }
            symbols_[ops[0]] = value;
            return pc;
        }
        if (mnem == ".word" || mnem == ".half" || mnem == ".byte") {
            unsigned esz = mnem == ".word" ? 4 : mnem == ".half" ? 2 : 1;
            if (ops.empty())
                throw AsmError(line, mnem + " needs operands");
            Item item;
            item.type = Item::Type::Data;
            item.line = line;
            item.addr = pc;
            item.elemSize = esz;
            item.dataExprs = ops;
            items_.push_back(std::move(item));
            return pc + esz * static_cast<uint32_t>(ops.size());
        }
        if (mnem == ".asciz" || mnem == ".ascii") {
            std::string content = parseStringLiteral(rest, line);
            Item item;
            item.type = Item::Type::Data;
            item.line = line;
            item.addr = pc;
            item.rawBytes.assign(content.begin(), content.end());
            if (mnem == ".asciz")
                item.rawBytes.push_back(0);
            uint32_t len = static_cast<uint32_t>(item.rawBytes.size());
            items_.push_back(std::move(item));
            return pc + len;
        }
        if (mnem == ".space") {
            if (ops.empty() || ops.size() > 2)
                throw AsmError(line, ".space needs size [, fill]");
            uint32_t n = evalExpr(ops[0], line);
            uint8_t fill = ops.size() == 2
                               ? static_cast<uint8_t>(evalExpr(ops[1], line))
                               : 0;
            Item item;
            item.type = Item::Type::Data;
            item.line = line;
            item.addr = pc;
            item.rawBytes.assign(n, fill);
            items_.push_back(std::move(item));
            return pc + n;
        }
        if (mnem == ".align") {
            if (ops.size() != 1)
                throw AsmError(line, ".align needs one operand");
            uint32_t a = evalExpr(ops[0], line);
            if (a == 0 || (a & (a - 1)))
                throw AsmError(line, ".align must be a power of two");
            uint32_t pad = (a - (pc % a)) % a;
            if (pad) {
                Item item;
                item.type = Item::Type::Data;
                item.line = line;
                item.addr = pc;
                item.rawBytes.assign(pad, 0);
                items_.push_back(std::move(item));
            }
            return pc + pad;
        }
        throw AsmError(line, "unknown directive '" + mnem + "'");
    }

    std::string
    parseStringLiteral(const std::string &rest, unsigned line)
    {
        size_t q1 = rest.find('"');
        size_t q2 = rest.rfind('"');
        if (q1 == std::string::npos || q2 <= q1)
            throw AsmError(line, "expected string literal");
        std::string raw = rest.substr(q1 + 1, q2 - q1 - 1);
        std::string out;
        for (size_t i = 0; i < raw.size(); ++i) {
            if (raw[i] == '\\' && i + 1 < raw.size()) {
                char e = raw[++i];
                switch (e) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case '0': out += '\0'; break;
                  case 'r': out += '\r'; break;
                  default: out += e; break;
                }
            } else {
                out += raw[i];
            }
        }
        return out;
    }

    // ----- Instruction parsing --------------------------------------

    Item
    parseInstr(const std::string &mnem, const std::vector<std::string> &ops,
               unsigned line)
    {
        Item item;
        item.line = line;

        auto needOps = [&](size_t n) {
            if (ops.size() != n)
                throw AsmError(line, mnem + " expects " +
                                         std::to_string(n) + " operand(s)");
        };

        // No-operand instructions.
        static const std::map<std::string, Opcode> simple = {
            {"nop", Opcode::Nop},     {"hlt", Opcode::Hlt},
            {"ret", Opcode::Ret},     {"iret", Opcode::Iret},
            {"cli", Opcode::Cli},     {"sti", Opcode::Sti},
            {"s2e_ena", Opcode::S2Ena}, {"s2e_dis", Opcode::S2Dis},
            // Both spellings assemble to the merge-point opcode; the
            // long form matches real S2E guest headers.
            {"s2e_merge", Opcode::S2Merge},
            {"s2e_merge_point", Opcode::S2Merge},
        };
        if (auto it = simple.find(mnem); it != simple.end()) {
            needOps(0);
            item.op = it->second;
            return item;
        }

        // One-register instructions.
        static const std::map<std::string, Opcode> onereg = {
            {"push", Opcode::Push},       {"pop", Opcode::Pop},
            {"not", Opcode::NotR},        {"neg", Opcode::NegR},
            {"s2e_symreg", Opcode::S2SymReg},
            {"s2e_out", Opcode::S2Out},
            {"s2e_assert", Opcode::S2Assert},
            {"s2e_concrete", Opcode::S2Concrete},
        };
        if (auto it = onereg.find(mnem); it != onereg.end()) {
            needOps(1);
            auto r = parseReg(ops[0]);
            if (!r)
                throw AsmError(line, "expected register, got '" + ops[0] +
                                         "'");
            item.op = it->second;
            item.r1 = r;
            return item;
        }

        // ALU reg/reg or reg/imm.
        for (const auto &alu : kAluMnemonics) {
            if (mnem == alu.name ||
                (alu.immForm != Opcode::Nop &&
                 mnem == std::string(alu.name) + "i")) {
                needOps(2);
                auto rd = parseReg(ops[0]);
                if (!rd)
                    throw AsmError(line, "expected register destination");
                item.r1 = rd;
                auto rs = parseReg(ops[1]);
                if (rs && mnem == alu.name) {
                    item.op = alu.regForm;
                    item.r2 = rs;
                } else {
                    if (alu.immForm == Opcode::Nop)
                        throw AsmError(line, mnem +
                                                 " has no immediate form");
                    item.op = alu.immForm;
                    item.immExpr = ops[1];
                }
                return item;
            }
        }

        // Memory operations.
        for (const auto &mm : kMemMnemonics) {
            if (mnem != mm.name)
                continue;
            needOps(2);
            const std::string &reg_op = mm.isStore ? ops[1] : ops[0];
            const std::string &mem_op = mm.isStore ? ops[0] : ops[1];
            auto r = parseReg(reg_op);
            if (!r)
                throw AsmError(line, "expected register operand");
            parseMemOperand(mem_op, item, line);
            item.op = mm.op;
            item.r1 = r;
            return item;
        }

        // Control flow.
        if (mnem == "jmp" || mnem == "call") {
            needOps(1);
            if (auto r = parseReg(ops[0])) {
                item.op = mnem == "jmp" ? Opcode::JmpR : Opcode::CallR;
                item.r1 = r;
            } else {
                item.op = mnem == "jmp" ? Opcode::Jmp : Opcode::Call;
                item.immExpr = ops[0];
            }
            return item;
        }
        for (const auto &cm : kCondMnemonics) {
            if (mnem == cm.name) {
                needOps(1);
                item.op = Opcode::Jcc;
                item.cc = cm.cc;
                item.immExpr = ops[0];
                return item;
            }
        }
        if (mnem == "int") {
            needOps(1);
            item.op = Opcode::Int;
            item.immExpr = ops[0];
            return item;
        }
        if (mnem == "s2e_kill") {
            needOps(1);
            item.op = Opcode::S2Kill;
            item.immExpr = ops[0];
            return item;
        }

        // Port I/O.
        if (mnem == "in") {
            needOps(2);
            auto rd = parseReg(ops[0]);
            if (!rd)
                throw AsmError(line, "in: expected register destination");
            item.r1 = rd;
            if (auto rp = parseReg(ops[1])) {
                item.op = Opcode::InR;
                item.r2 = rp;
            } else {
                item.op = Opcode::InI;
                item.immExpr = ops[1];
            }
            return item;
        }
        if (mnem == "out") {
            needOps(2);
            auto rs = parseReg(ops[1]);
            if (!rs)
                throw AsmError(line, "out: expected register source");
            item.r1 = rs;
            if (auto rp = parseReg(ops[0])) {
                item.op = Opcode::OutR;
                // encoding: OutR r1=src, r2=port reg
                item.r2 = rp;
            } else {
                item.op = Opcode::OutI;
                item.immExpr = ops[0];
            }
            return item;
        }

        // S2E multi-operand opcodes.
        if (mnem == "s2e_symmem") {
            needOps(2);
            auto ra = parseReg(ops[0]);
            auto rl = parseReg(ops[1]);
            if (!ra || !rl)
                throw AsmError(line, "s2e_symmem expects two registers");
            item.op = Opcode::S2SymMem;
            item.r1 = ra;
            item.r2 = rl;
            return item;
        }
        if (mnem == "s2e_symrange") {
            needOps(3);
            auto r = parseReg(ops[0]);
            if (!r)
                throw AsmError(line, "s2e_symrange expects a register");
            item.op = Opcode::S2SymRange;
            item.r1 = r;
            item.immExpr = ops[1];
            item.imm2Expr = ops[2];
            return item;
        }

        throw AsmError(line, "unknown mnemonic '" + mnem + "'");
    }

    void
    parseMemOperand(const std::string &s, Item &item, unsigned line)
    {
        std::string t = trim(s);
        if (t.size() < 2 || t.front() != '[' || t.back() != ']')
            throw AsmError(line, "expected memory operand, got '" + s + "'");
        std::string inner = trim(t.substr(1, t.size() - 2));
        // Forms: [reg], [reg+expr], [reg-expr]
        size_t op_pos = std::string::npos;
        // Find the first top-level + or - after the register name.
        for (size_t i = 1; i < inner.size(); ++i) {
            if (inner[i] == '+' || inner[i] == '-') {
                op_pos = i;
                break;
            }
        }
        std::string reg_text =
            op_pos == std::string::npos ? inner : inner.substr(0, op_pos);
        auto r = parseReg(reg_text);
        if (!r)
            throw AsmError(line, "memory base must be a register in '" + s +
                                     "'");
        item.r2 = r;
        if (op_pos != std::string::npos) {
            // Keep the sign as part of the expression.
            item.immExpr = inner.substr(op_pos);
            if (item.immExpr[0] == '+')
                item.immExpr = item.immExpr.substr(1);
        }
    }

    // ----- Pass 2: encoding ------------------------------------------

    void
    pass2()
    {
        // Rebuild sections from scratch: find the section each item
        // belongs to. Simplification: sections were created in order
        // and items are in address order within their section.
        // We re-derive sections directly from items for robustness.
        program_.sections.clear();
        Program::Section *cur = nullptr;
        uint32_t expected = 0;

        for (const Item &item : items_) {
            if (!cur || item.addr != expected) {
                program_.sections.emplace_back();
                cur = &program_.sections.back();
                cur->addr = item.addr;
                expected = item.addr;
            }

            if (item.type == Item::Type::Data) {
                if (!item.rawBytes.empty() || item.dataExprs.empty()) {
                    cur->bytes.insert(cur->bytes.end(),
                                      item.rawBytes.begin(),
                                      item.rawBytes.end());
                    expected += item.rawBytes.size();
                } else {
                    for (const auto &e : item.dataExprs) {
                        uint32_t v = evalExpr(e, item.line);
                        for (unsigned i = 0; i < item.elemSize; ++i)
                            cur->bytes.push_back((v >> (8 * i)) & 0xFF);
                        expected += item.elemSize;
                    }
                }
                continue;
            }

            Instruction instr;
            instr.op = item.op;
            instr.cc = item.cc;
            instr.r1 = item.r1.value_or(0);
            instr.r2 = item.r2.value_or(0);
            if (!item.immExpr.empty())
                instr.imm = evalExpr(item.immExpr, item.line);
            if (!item.imm2Expr.empty())
                instr.imm2 = evalExpr(item.imm2Expr, item.line);
            size_t before = cur->bytes.size();
            encode(instr, cur->bytes);
            uint32_t encoded =
                static_cast<uint32_t>(cur->bytes.size() - before);
            S2E_ASSERT(encoded == instrLength(item.op),
                       "pass2 length mismatch at line %u", item.line);
            expected += encoded;
        }
    }

    Program program_;
    std::map<std::string, uint32_t> symbols_;
    std::vector<Item> items_;
    std::string entryName_;
    unsigned entryLine_ = 0;
};

} // namespace

Program
assemble(const std::string &source)
{
    Assembler assembler;
    return assembler.run(source);
}

} // namespace s2e::isa
