/**
 * @file
 * Two-pass assembler for gisa.
 *
 * Guest software in this repository (mini-kernel, drivers, workloads)
 * is written in gisa assembly text and assembled at test/benchmark
 * startup. Supported syntax:
 *
 *   ; comment                      . line comments with ';' or '#'
 *   .org 0x1000                    . set location counter
 *   .entry main                    . program entry point
 *   .equ NAME, expr                . named constant
 *   .word e1, e2, ...              . 32-bit data
 *   .half e1, ...                  . 16-bit data
 *   .byte e1, ...                  . 8-bit data
 *   .asciz "text"                  . NUL-terminated string
 *   .space n [, fill]              . n fill bytes
 *   .align n                       . pad to n-byte boundary
 *   label:                         . define label
 *       movi r1, 10
 *       mov  r1, r2                . 'mov r1, 5' auto-selects movi
 *       ldw  r2, [r1+4]            . loads/stores: [reg], [reg+expr]
 *       stw  [r1+8], r2
 *       jeq  label                 . jcc mnemonics: jeq jne jb jae
 *       call func                  .   jbe ja jlt jge jle jgt
 *       in   r1, 0x10              . port I/O, imm or reg port
 *       s2e_symreg r1              . S2E custom opcodes
 *
 * Expressions: integers (dec/0x/0b/'c'), labels, .equ names, unary -,
 * binary + and -.
 */

#ifndef S2E_ISA_ASSEMBLER_HH
#define S2E_ISA_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace s2e::isa {

/** Assembly failure, carrying the 1-based source line. */
class AsmError : public std::runtime_error
{
  public:
    AsmError(unsigned line, const std::string &message)
        : std::runtime_error("line " + std::to_string(line) + ": " +
                             message),
          line_(line)
    {
    }
    unsigned line() const { return line_; }

  private:
    unsigned line_;
};

/** An assembled program image. */
struct Program {
    struct Section {
        uint32_t addr = 0;
        std::vector<uint8_t> bytes;
    };
    std::vector<Section> sections;
    uint32_t entry = 0;
    std::map<std::string, uint32_t> symbols;

    /** Address of a symbol; throws std::out_of_range if undefined. */
    uint32_t
    symbol(const std::string &name) const
    {
        return symbols.at(name);
    }

    /** Total byte size across sections. */
    size_t size() const;
};

/**
 * Assemble a full program from source text.
 * @throws AsmError on any syntax or semantic error.
 */
Program assemble(const std::string &source);

} // namespace s2e::isa

#endif // S2E_ISA_ASSEMBLER_HH
