#include "tools/profs.hh"

#include <algorithm>

#include "guest/drivers.hh"
#include "guest/kernel.hh"
#include "guest/layout.hh"
#include "guest/workloads.hh"
#include "plugins/coverage.hh"
#include "plugins/pathkiller.hh"
#include "plugins/searchers.hh"
#include "vm/devices.hh"
#include "vm/nic.hh"

namespace s2e::tools {

ProfsReport
profileMachine(const ProfsConfig &config, vm::MachineConfig machine,
               const std::vector<std::pair<uint32_t, uint32_t>> &unit,
               const std::function<void(core::Engine &)> &setup)
{
    core::EngineConfig engine_config;
    engine_config.model = config.model;
    engine_config.unitRanges = unit;
    engine_config.maxInstructions = config.maxInstructions;
    engine_config.maxWallSeconds = config.maxWallSeconds;
    engine_config.maxStatesCreated = config.maxStates;
    // Long scheduling quanta: a path stuck in a loop accumulates
    // enough same-block repeats within one quantum for the loop
    // killer to catch it even when thousands of sibling paths share
    // the run budget.
    engine_config.timesliceBlocks = 4096;

    core::Engine engine(std::move(machine), engine_config);

    plugins::PerformanceProfile::Config pc;
    pc.hierarchy = config.hierarchy;
    pc.findBestCase = config.findBestCase;
    plugins::PerformanceProfile profile(engine, pc);

    ProfsReport report;
    engine.events().onGuestOutput.subscribe(
        [&report](core::ExecutionState &state, const core::Value &v) {
            if (v.isConcrete())
                report.guestOutputs[state.id()] = v.concrete();
        });

    // Per-path runaway detection, two layers:
    //  - an instruction cap per path (coarse),
    //  - the PathKiller loop detector: the same block executing
    //    thousands of times on one path with no new coverage is the
    //    infinite-loop signature (the paper's polling-loop killer).
    uint64_t cap = config.perPathInstructionCap;
    engine.events().onBlockExecute.subscribe(
        [cap, &engine](core::ExecutionState &state,
                       const dbt::TranslationBlock &) {
            if (cap && state.instrCount > cap)
                engine.killState(state,
                                 core::StateStatus::BudgetExceeded,
                                 "profs: per-path instruction cap");
        });
    plugins::CoverageTracker coverage(engine);
    plugins::PathKiller::Config pk;
    pk.maxLoopVisits = 500;
    plugins::PathKiller loop_killer(engine, coverage, pk);

    // Fair scheduling so a runaway path cannot be starved behind a
    // broad fork tree (nor the reverse).
    engine.setSearcher(std::make_unique<plugins::RandomSearcher>(7));

    if (setup)
        setup(engine);

    report.run = engine.run();
    report.paths = profile.results();
    report.envelope = profile.envelope();
    report.wallSeconds = report.run.wallSeconds;
    report.solverSeconds = engine.solver().stats().seconds("solver.time");
    // Unbounded-path detection: a path that tripped the per-path cap
    // (or otherwise dwarfed every completed path) is the infinite-
    // loop signature.
    uint64_t max_completed = 0;
    for (const auto &p : report.paths)
        if (p.status == core::StateStatus::Halted)
            max_completed = std::max(max_completed, p.instructions);
    for (const auto &p : report.paths) {
        if (p.status != core::StateStatus::BudgetExceeded)
            continue;
        if ((cap && p.instructions > cap) ||
            p.instructions > 4 * std::max<uint64_t>(max_completed, 1))
            report.unboundedSuspected = true;
    }
    if (loop_killer.pathsKilled() > 0)
        report.unboundedSuspected = true;
    return report;
}

ProfsReport
profileUrlParser(const ProfsConfig &config, unsigned symbolic_len)
{
    vm::MachineConfig machine;
    machine.ramSize = guest::kRamSize;
    machine.program =
        isa::assemble(guest::kernelSource() + guest::urlParserSource());
    machine.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
    };

    // The unit is the application (the parser); kernel + lib are the
    // environment.
    std::vector<std::pair<uint32_t, uint32_t>> unit = {
        {guest::kAppCode, guest::kAppCodeEnd}};

    return profileMachine(
        config, std::move(machine), unit,
        [symbolic_len](core::Engine &engine) {
            auto &state = engine.initialState();
            auto &bld = engine.builder();
            // Concrete "http://" prefix keeps the path family focused
            // on parser behavior, as the paper's workload did; the
            // remaining characters are symbolic.
            const char *prefix = "http://";
            uint32_t addr = guest::kUrlBuffer;
            for (const char *p = prefix; *p; ++p)
                state.mem.write(addr++, core::Value(uint32_t(*p)), 1,
                                bld);
            engine.makeMemSymbolic(state, addr, symbolic_len, "url");
            state.mem.write(addr + symbolic_len, core::Value(0u), 1,
                            bld);
        });
}

ProfsReport
profilePing(const ProfsConfig &config, bool patched)
{
    vm::MachineConfig machine;
    machine.ramSize = guest::kRamSize;
    machine.program = isa::assemble(
        guest::kernelSource() + guest::driverSource(guest::DriverKind::Dma) +
        guest::pingSource(patched));
    machine.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
        auto nic = std::make_unique<vm::DmaNic>();
        nic->setLoopback(true);
        devices.add(std::move(nic));
    };

    // The unit spans the app and the driver (ping + its NIC driver);
    // the kernel is the environment.
    std::vector<std::pair<uint32_t, uint32_t>> unit = {
        {guest::kDriverCode, guest::kDriverCodeEnd},
        {guest::kAppCode, guest::kAppCodeEnd}};

    return profileMachine(config, std::move(machine), unit,
                          [](core::Engine &engine) {
                              auto &state = engine.initialState();
                              auto &bld = engine.builder();
                              guest::setConfig(state, bld,
                                               guest::kCfgCardType, 0);
                              guest::setConfig(state, bld,
                                               guest::kCfgSymReply, 1);
                          });
}

} // namespace s2e::tools
