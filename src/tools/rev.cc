#include "tools/rev.hh"

#include <chrono>

#include "guest/kernel.hh"
#include "guest/layout.hh"
#include "support/rng.hh"
#include "tools/ddt.hh" // driverProgram / driverMachine helpers
#include "vm/nic.hh"

namespace s2e::tools {

using guest::DriverKind;

size_t
RecoveredCfg::edgeCount() const
{
    size_t n = 0;
    for (const auto &[pc, block] : blocks)
        n += block.successors.size();
    return n;
}

size_t
RecoveredCfg::hardwareOpCount() const
{
    size_t n = 0;
    for (const auto &[pc, block] : blocks)
        n += block.hardwareAccesses.size();
    return n;
}

Rev::Rev(RevConfig config)
    : config_(config), program_(driverProgram(config.driver))
{
    core::EngineConfig engine_config;
    engine_config.model = config_.model;
    engine_config.unitRanges = {
        {guest::kDriverCode, guest::kDriverCodeEnd}};
    auto ports = guest::driverPortRange(config_.driver);
    if (ports.second)
        engine_config.symbolicPortRanges = {ports};
    auto mmio = guest::driverMmioRange(config_.driver);
    if (mmio.second)
        engine_config.symbolicMmioRanges = {mmio};
    engine_config.maxInstructions = config_.maxInstructions;
    engine_config.maxWallSeconds = config_.maxWallSeconds;
    engine_config.maxStatesCreated = config_.maxStates;
    engine_config.numWorkers = config_.numWorkers;
    engine_config.useFibers = config_.useFibers;
    engine_config.emitWitnesses = config_.emitWitnesses;
    engine_config.witnessDir = config_.witnessDir;
    engine_config.replayWitness = config_.replayWitness;

    engine_ = std::make_unique<core::Engine>(
        driverMachine(config_.driver, program_), engine_config);

    // RC-OC: registry values are unconstrained symbolic.
    auto &state = engine_->initialState();
    auto &bld = engine_->builder();
    for (uint32_t key : {guest::kCfgCardType, guest::kCfgMacOverride,
                         guest::kCfgPromiscuous, guest::kCfgMtu}) {
        guest::setConfig(state, bld, key, 0);
        for (unsigned slot = 0; slot < 32; ++slot) {
            uint32_t addr = guest::kConfigStore + slot * 8;
            core::Value k = state.mem.read(addr, 4, bld);
            if (k.isConcrete() && k.concrete() == key) {
                engine_->makeMemSymbolic(state, addr + 4, 4, "cfg");
                break;
            }
        }
    }

    plugins::ExecutionTracer::Config tc;
    tc.traceBlocks = true;
    tc.tracePortIo = true;
    tc.ranges = {{guest::kDriverCode, guest::kDriverCodeEnd}};
    tracer_ = std::make_unique<plugins::ExecutionTracer>(*engine_, tc);

    coverage_ = std::make_unique<plugins::CoverageTracker>(
        *engine_,
        std::vector<std::pair<uint32_t, uint32_t>>{
            {guest::kDriverCode, guest::kDriverCodeEnd}});

    plugins::PathKiller::Config pk;
    pk.maxLoopVisits = 200;
    pk.stagnationBlocks = config_.stagnationBlocks;
    pathKiller_ = std::make_unique<plugins::PathKiller>(*engine_,
                                                        *coverage_, pk);
}

Rev::~Rev() = default;

RevResult
Rev::run()
{
    RevResult result;
    result.run = engine_->run();
    result.pathsExplored = result.run.statesCreated;

    // Offline CFG reconstruction from the per-path trace fragments.
    auto ingest = [&](const plugins::TraceState &trace) {
        result.droppedTraceEntries += trace.dropped;
        uint32_t prev = 0;
        bool have_prev = false;
        for (const auto &entry : trace.entries) {
            switch (entry.kind) {
              case plugins::TraceEntry::Kind::Block: {
                auto &block = result.cfg.blocks[entry.pc];
                block.pc = entry.pc;
                block.timesObserved++;
                if (have_prev)
                    result.cfg.blocks[prev].successors.insert(entry.pc);
                prev = entry.pc;
                have_prev = true;
                break;
              }
              case plugins::TraceEntry::Kind::PortIn:
              case plugins::TraceEntry::Kind::PortOut:
                if (have_prev)
                    result.cfg.blocks[prev].hardwareAccesses.insert(
                        {entry.addr,
                         entry.kind ==
                             plugins::TraceEntry::Kind::PortOut});
                break;
              default:
                break;
            }
        }
    };
    for (const auto &[state_id, trace] : tracer_->finishedTraces())
        ingest(trace);
    // States still alive at budget exhaustion also carry traces.
    for (const auto &s : engine_->allStates()) {
        const plugins::TraceState *trace = tracer_->traceOf(*s);
        if (trace && s->status == core::StateStatus::BudgetExceeded)
            ingest(*trace);
    }
    if (result.droppedTraceEntries > 0)
        warn("tracer dropped %llu entries at the per-path cap; the "
             "recovered CFG is built from truncated traces",
             static_cast<unsigned long long>(result.droppedTraceEntries));

    plugins::StaticBlocks blocks = plugins::staticBasicBlocks(
        program_, guest::kDriverCode, guest::kDriverCodeEnd);
    result.driverCoverage = coverage_->coverageFraction(blocks);
    result.coverageTimeline = coverage_->timeline();

    // Static-vs-dynamic CFG diff. The static half starts from the
    // driver ABI symbols a disassembler would get from the binary's
    // export table; drv_isr is intentionally absent — its address is
    // written into the IVT at runtime, so static recursive descent
    // cannot see it. Every ISR block the diff reports as dynamic-only
    // is a block multi-path execution alone discovered.
    std::vector<uint32_t> entries;
    for (const char *sym :
         {"drv_init", "drv_send", "drv_recv", "drv_ioctl", "drv_unload"})
        if (auto it = program_.symbols.find(sym);
            it != program_.symbols.end())
            entries.push_back(it->second);
    result.staticCfg = analysis::recoverStaticCfg(
        program_, entries, guest::kDriverCode, guest::kDriverCodeEnd);
    std::set<uint32_t> dynamic_pcs;
    for (const auto &[pc, block] : result.cfg.blocks)
        dynamic_pcs.insert(pc);
    result.cfgDiff = analysis::diffCfg(result.staticCfg, dynamic_pcs);
    return result;
}

std::string
Rev::synthesizeDriver(const RecoveredCfg &cfg, const std::string &name)
{
    std::string out;
    out += strprintf("// %s: synthesized driver (%zu blocks, %zu edges, "
                     "%zu hardware ops)\n",
                     name.c_str(), cfg.blockCount(), cfg.edgeCount(),
                     cfg.hardwareOpCount());
    out += strprintf("void %s_driver(void) {\n", name.c_str());
    for (const auto &[pc, block] : cfg.blocks) {
        out += strprintf("  bb_%x: // observed %llu times\n", pc,
                         static_cast<unsigned long long>(
                             block.timesObserved));
        for (const auto &[port, is_write] : block.hardwareAccesses) {
            if (is_write)
                out += strprintf("    hw_write(0x%x, ...);\n", port);
            else
                out += strprintf("    (void)hw_read(0x%x);\n", port);
        }
        if (block.successors.empty()) {
            out += "    return;\n";
        } else {
            out += "    goto_one_of(";
            bool first = true;
            for (uint32_t succ : block.successors) {
                out += strprintf("%sbb_%x", first ? "" : ", ", succ);
                first = false;
            }
            out += ");\n";
        }
    }
    out += "}\n";
    return out;
}

RevNicBaselineResult
runRevNicBaseline(DriverKind kind, double max_wall_seconds,
                  uint64_t max_instructions, uint64_t seed)
{
    RevNicBaselineResult result;
    Rng rng(seed);
    isa::Program program = driverProgram(kind);
    plugins::StaticBlocks blocks = plugins::staticBasicBlocks(
        program, guest::kDriverCode, guest::kDriverCodeEnd);

    std::set<uint32_t> covered;
    auto start = std::chrono::steady_clock::now();
    uint64_t instructions_used = 0;

    while (true) {
        double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        if (elapsed > max_wall_seconds ||
            instructions_used > max_instructions)
            break;

        core::EngineConfig config;
        config.model = core::ConsistencyModel::ScCe;
        config.maxInstructions = 200'000;
        core::Engine engine(driverMachine(kind, program), config);

        // Fuzz the registry and the inbound packet.
        auto &state = engine.initialState();
        auto &bld = engine.builder();
        guest::setConfig(state, bld, guest::kCfgCardType,
                         static_cast<uint32_t>(rng.below(6)));
        guest::setConfig(state, bld, guest::kCfgMacOverride,
                         static_cast<uint32_t>(rng.below(2)));
        guest::setConfig(state, bld, guest::kCfgPromiscuous,
                         static_cast<uint32_t>(rng.below(2)));
        guest::setConfig(state, bld, guest::kCfgMtu,
                         static_cast<uint32_t>(rng.below(10000)));
        auto *nic = dynamic_cast<vm::NicBase *>(
            state.devices.byName(guest::driverDeviceName(kind)));
        if (nic) {
            std::vector<uint8_t> pkt(1 + rng.below(32));
            for (auto &byte : pkt)
                byte = static_cast<uint8_t>(rng.next());
            nic->injectPacket(std::move(pkt));
        }

        plugins::CoverageTracker coverage(
            engine, {{guest::kDriverCode, guest::kDriverCodeEnd}});
        core::RunResult run = engine.run();
        instructions_used += run.totalInstructions;
        result.trials++;

        for (uint32_t start_pc : blocks.starts)
            if (coverage.isCovered(start_pc))
                covered.insert(start_pc);
        double t = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
        result.coverageTimeline.emplace_back(t, covered.size());
    }

    result.driverCoverage =
        blocks.count() == 0
            ? 0.0
            : static_cast<double>(covered.size()) /
                  static_cast<double>(blocks.count());
    return result;
}

} // namespace s2e::tools
