#include "tools/modelsweep.hh"

#include "guest/kernel.hh"
#include "guest/layout.hh"
#include "guest/workloads.hh"
#include "plugins/annotation.hh"
#include "plugins/coverage.hh"
#include "plugins/pathkiller.hh"
#include "tools/ddt.hh"
#include "vm/devices.hh"

namespace s2e::tools {

using core::ConsistencyModel;

namespace {

SweepResult
metricsFrom(core::Engine &engine, const core::RunResult &run,
            double coverage, ConsistencyModel model)
{
    SweepResult r;
    r.model = model;
    r.wallSeconds = run.wallSeconds;
    r.coverage = coverage;
    r.memoryHighWatermark =
        engine.stats().get("engine.memory_high_watermark");
    r.solverSeconds = engine.solver().stats().seconds("solver.time");
    r.solverFraction =
        run.wallSeconds > 0 ? r.solverSeconds / run.wallSeconds : 0;
    r.solverQueries = engine.solver().stats().get("solver.queries");
    r.avgQuerySeconds =
        r.solverQueries ? r.solverSeconds /
                              static_cast<double>(r.solverQueries)
                        : 0;
    r.pathsExplored = run.statesCreated;
    r.instructions = run.totalInstructions;
    r.budgetExhausted = run.budgetExhausted;
    r.solverUnknowns =
        engine.solver().stats().get("solver.unknown_results");
    r.solverRetries = engine.solver().stats().get("solver.retries");
    r.maxQueryMicros =
        engine.solver().stats().get("solver.max_query_micros");
    r.solverFailures = run.solverFailures;
    r.degradedStates = run.degradedStates;
    return r;
}

} // namespace

SweepResult
runDriverSweep(guest::DriverKind kind, ConsistencyModel model,
               const SweepBudget &budget)
{
    DdtConfig config;
    config.driver = kind;
    config.model = model;
    config.annotations = true; // applied only where the model allows
    config.maxInstructions = budget.maxInstructions;
    config.maxWallSeconds = budget.maxWallSeconds;
    config.maxStates = budget.maxStates;

    Ddt ddt(config);
    DdtResult result = ddt.run();
    return metricsFrom(ddt.engine(), result.run, result.driverCoverage,
                       model);
}

SweepResult
runLuaSweep(ConsistencyModel model, const SweepBudget &budget,
            unsigned symbolic_input_len, unsigned symbolic_bytecode_ops)
{
    isa::Program program =
        isa::assemble(guest::kernelSource() + guest::luaSource());

    vm::MachineConfig machine;
    machine.ramSize = guest::kRamSize;
    machine.program = program;
    machine.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
    };

    core::EngineConfig engine_config;
    engine_config.model = model;
    // The unit is the interpreter; lexer+parser+kernel are the
    // environment (the paper's Lua split, §6.3).
    engine_config.unitRanges = {
        {program.symbol("interp"), guest::kAppCodeEnd}};
    engine_config.maxInstructions = budget.maxInstructions;
    engine_config.maxWallSeconds = budget.maxWallSeconds;
    engine_config.maxStatesCreated = budget.maxStates;

    core::Engine engine(machine, engine_config);
    plugins::Annotation annotation(engine);
    plugins::CoverageTracker coverage(
        engine,
        std::vector<std::pair<uint32_t, uint32_t>>{
            {guest::kAppCode, guest::kAppCodeEnd}});
    plugins::PathKiller::Config pk;
    pk.maxLoopVisits = 500;
    plugins::PathKiller killer(engine, coverage, pk);

    auto &state = engine.initialState();
    auto &bld = engine.builder();

    // Concrete seed program: two statements exercising every opcode.
    std::string seed = "a=2+3;!a*4;";
    for (size_t i = 0; i <= seed.size(); ++i)
        state.mem.write(guest::kLuaInput + static_cast<uint32_t>(i),
                        core::Value(i < seed.size()
                                        ? static_cast<uint32_t>(seed[i])
                                        : 0u),
                        1, bld);

    switch (model) {
      case ConsistencyModel::ScSe:
      case ConsistencyModel::ScUe:
        // Symbolic program text (the parser-hostile setup).
        engine.makeMemSymbolic(state, guest::kLuaInput,
                               symbolic_input_len, "lua_input");
        state.mem.write(guest::kLuaInput + symbolic_input_len,
                        core::Value(0u), 1, bld);
        break;
      case ConsistencyModel::Lc:
      case ConsistencyModel::RcOc: {
        // Concrete text; symbolify the compiled bytecode right before
        // the interpreter runs. LC constrains opcodes/args to the
        // bytecode contract; RC-OC leaves them unconstrained.
        bool constrained = model == ConsistencyModel::Lc;
        annotation.at(
            program.symbol("interp"),
            [constrained, symbolic_bytecode_ops](
                core::ExecutionState &st, core::Engine &eng) {
                auto &b = eng.builder();
                for (unsigned i = 0; i < symbolic_bytecode_ops; ++i) {
                    uint32_t addr = guest::kLuaBytecode + 2 * i;
                    eng.makeMemSymbolic(st, addr, 2, "lua_bc");
                    if (constrained) {
                        expr::ExprRef op = st.mem.byteExpr(addr, b);
                        expr::ExprRef arg = st.mem.byteExpr(addr + 1, b);
                        st.addConstraint(b.ule(
                            op, b.constant(guest::kLuaOpMax, 8)));
                        st.addConstraint(
                            b.ule(arg, b.constant(25, 8)));
                    }
                }
            });
        break;
      }
      case ConsistencyModel::ScCe:
      case ConsistencyModel::RcCc:
        break; // concrete input
    }

    core::RunResult run = engine.run();
    plugins::StaticBlocks blocks = plugins::staticBasicBlocks(
        program, guest::kAppCode, guest::kAppCodeEnd);
    return metricsFrom(engine, run, coverage.coverageFraction(blocks),
                       model);
}

} // namespace s2e::tools
