/**
 * @file
 * The §6.3 experiment driver: run a target (driver or the Lua-like
 * interpreter) to completion under each execution consistency model
 * and measure running time, basic-block coverage, memory high
 * watermark, and constraint-solving time — the data behind Table 6
 * and Figures 7, 8 and 9.
 */

#ifndef S2E_TOOLS_MODELSWEEP_HH
#define S2E_TOOLS_MODELSWEEP_HH

#include "core/consistency.hh"
#include "guest/drivers.hh"

namespace s2e::tools {

/** Metrics from one (target, model) run. */
struct SweepResult {
    core::ConsistencyModel model;
    double wallSeconds = 0;
    double coverage = 0;               ///< basic-block fraction
    uint64_t memoryHighWatermark = 0;  ///< bytes (Fig 8)
    double solverSeconds = 0;
    double solverFraction = 0;         ///< of wall time (Fig 9 left)
    double avgQuerySeconds = 0;        ///< (Fig 9 right)
    uint64_t solverQueries = 0;
    size_t pathsExplored = 0;
    uint64_t instructions = 0;
    bool budgetExhausted = false;

    // Solver-resilience telemetry (robustness of long sweeps).
    uint64_t solverUnknowns = 0;   ///< queries that ended Unknown
    uint64_t solverRetries = 0;    ///< escalated-budget re-solves
    uint64_t maxQueryMicros = 0;   ///< worst single-query latency
    size_t solverFailures = 0;     ///< states killed on Unknown
    size_t degradedStates = 0;     ///< states that absorbed an Unknown
};

/** Budgets shared by every sweep cell. */
struct SweepBudget {
    uint64_t maxInstructions = 2'000'000;
    double maxWallSeconds = 20.0;
    size_t maxStates = 256;
};

/** Explore one NIC driver under `model` (DDT-style setup). */
SweepResult runDriverSweep(guest::DriverKind kind,
                           core::ConsistencyModel model,
                           const SweepBudget &budget);

/**
 * Explore the Lua-like interpreter under `model`:
 *  - SC-SE / SC-UE: the program text is symbolic;
 *  - LC: concrete text, constrained symbolic bytecode injected after
 *    the parser (the paper's §6.3 setup);
 *  - RC-OC: unconstrained symbolic bytecode;
 *  - SC-CE / RC-CC: concrete text (RC-CC follows all CFG edges).
 */
SweepResult runLuaSweep(core::ConsistencyModel model,
                        const SweepBudget &budget,
                        unsigned symbolicInputLen = 5,
                        unsigned symbolicBytecodeOps = 4);

} // namespace s2e::tools

#endif // S2E_TOOLS_MODELSWEEP_HH
