#include "tools/ddt.hh"

#include "guest/kernel.hh"
#include "guest/layout.hh"
#include "vm/devices.hh"
#include "vm/nic.hh"

namespace s2e::tools {

using core::ConsistencyModel;
using core::ExecutionState;
using guest::DriverKind;

namespace {
/** Plugin-state key for the alloc-failure injection counter. */
const int kAllocFailKey = 0;
} // namespace

isa::Program
driverProgram(DriverKind kind)
{
    return isa::assemble(guest::kernelSource() + guest::driverSource(kind) +
                         guest::driverHarnessSource());
}

vm::MachineConfig
driverMachine(DriverKind kind, const isa::Program &program)
{
    vm::MachineConfig m;
    m.ramSize = guest::kRamSize;
    m.program = program;
    m.deviceSetup = [kind](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
        devices.add(std::make_unique<vm::TimerDevice>());
        std::unique_ptr<vm::NicBase> nic;
        switch (kind) {
          case DriverKind::Dma:
            nic = std::make_unique<vm::DmaNic>();
            break;
          case DriverKind::Pio:
            nic = std::make_unique<vm::PioNic>();
            break;
          case DriverKind::Mmio:
            nic = std::make_unique<vm::MmioNic>();
            break;
          case DriverKind::Ring:
            nic = std::make_unique<vm::RingNic>();
            break;
        }
        nic->injectPacket({0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80});
        devices.add(std::move(nic));
    };
    return m;
}

Ddt::Ddt(DdtConfig config)
    : config_(config), program_(driverProgram(config.driver))
{
    core::EngineConfig engine_config;
    engine_config.model = config_.model;
    engine_config.unitRanges = {
        {guest::kDriverCode, guest::kDriverCodeEnd}};
    auto ports = guest::driverPortRange(config_.driver);
    if (ports.second)
        engine_config.symbolicPortRanges = {ports};
    auto mmio = guest::driverMmioRange(config_.driver);
    if (mmio.second)
        engine_config.symbolicMmioRanges = {mmio};
    engine_config.maxInstructions = config_.maxInstructions;
    engine_config.maxWallSeconds = config_.maxWallSeconds;
    engine_config.maxStatesCreated = config_.maxStates;
    engine_config.numWorkers = config_.numWorkers;
    engine_config.emitWitnesses = config_.emitWitnesses;
    engine_config.witnessDir = config_.witnessDir;
    engine_config.replayWitness = config_.replayWitness;
    engine_config.solverOptions = config_.solverOptions;

    engine_ = std::make_unique<core::Engine>(
        driverMachine(config_.driver, program_), engine_config);

    annotation_ = std::make_unique<plugins::Annotation>(*engine_);

    // Interface annotations install first: their callbacks must run
    // before the MemoryChecker's hooks at shared program counters
    // (the alloc-failure fork must happen before the chunk is
    // recorded, so the failure world never owns it).
    bool model_allows_annotations =
        config_.model == ConsistencyModel::Lc ||
        config_.model == ConsistencyModel::RcOc;
    if (config_.annotations && model_allows_annotations)
        installAnnotations();

    plugins::MemoryChecker::Config mc;
    mc.heapBase = guest::kHeapBase;
    mc.heapEnd = guest::kHeapEnd;
    mc.nullGuardEnd = vm::kIvtBase;
    mc.redzone = guest::kChunkRedzone;
    mc.allocReturnPc = program_.symbol("sys_alloc_done");
    mc.freeEntryPc = program_.symbol("sys_free_entry");
    memChecker_ = std::make_unique<plugins::MemoryChecker>(
        *engine_, *annotation_, mc);

    plugins::DataRaceDetector::Config rc;
    rc.watchBase = guest::kDriverData;
    rc.watchEnd = guest::kDriverDataEnd;
    races_ = std::make_unique<plugins::DataRaceDetector>(*engine_, rc);

    plugins::BugCheck::Config bc;
    bc.panicPc = program_.symbol("kpanic");
    // Replay is a solver-free oracle: crash reproduction inputs come
    // from the witness itself, so the on-crash model query must stay
    // off or the "zero solver queries" property breaks.
    bc.computeInputs = !config_.replayWitness;
    bugCheck_ = std::make_unique<plugins::BugCheck>(*engine_, bc);

    coverage_ = std::make_unique<plugins::CoverageTracker>(
        *engine_,
        std::vector<std::pair<uint32_t, uint32_t>>{
            {guest::kDriverCode, guest::kDriverCodeEnd}});

    plugins::PathKiller::Config pk;
    pk.maxLoopVisits = config_.pathKillerLoopVisits;
    pk.stagnationBlocks = config_.stagnationBlocks;
    pathKiller_ = std::make_unique<plugins::PathKiller>(*engine_,
                                                        *coverage_, pk);

    // Depth-first starves the early configuration siblings when deep
    // hardware-driven subtrees explode; a (seeded, deterministic)
    // random selector balances the tree like the paper's stock
    // priority-based selectors.
    engine_->setSearcher(
        std::make_unique<plugins::RandomSearcher>(config_.searcherSeed));
}

Ddt::~Ddt() = default;

void
Ddt::installAnnotations()
{
    // Local consistency (paper §3.2.2): environment outputs entering
    // the driver become symbolic values constrained by the interface
    // contract. Under RC-OC the constraints are dropped entirely.
    bool constrained = config_.model == ConsistencyModel::Lc;
    core::Engine &eng = *engine_;

    // --- Registry configuration (the MSWinRegistry channel). The
    // config-store *values* the driver reads become symbolic. -----
    auto &state = eng.initialState();
    auto &bld = eng.builder();
    auto symbolic_config = [&](uint32_t key, uint32_t lo, uint32_t hi,
                               const char *name) {
        guest::setConfig(state, bld, key, lo); // claim a slot
        // Find the slot to learn the value address.
        for (unsigned slot = 0; slot < 32; ++slot) {
            uint32_t addr = guest::kConfigStore + slot * 8;
            core::Value k = state.mem.read(addr, 4, bld);
            if (k.isConcrete() && k.concrete() == key) {
                eng.makeMemSymbolic(state, addr + 4, 4, name);
                if (constrained) {
                    core::Value v = state.mem.read(addr + 4, 4, bld);
                    if (v.isSymbolic()) {
                        state.addConstraint(
                            bld.uge(v.expr(), bld.constant(lo, 32)));
                        state.addConstraint(
                            bld.ule(v.expr(), bld.constant(hi, 32)));
                    }
                }
                return;
            }
        }
    };
    symbolic_config(guest::kCfgCardType, 0, 3, "cfg_cardtype");
    symbolic_config(guest::kCfgMacOverride, 0, 1, "cfg_macoverride");
    symbolic_config(guest::kCfgPromiscuous, 0, 1, "cfg_promisc");
    symbolic_config(guest::kCfgMtu, 0, 8192, "cfg_mtu");

    // --- Allocator contract: alloc may return NULL (paper Fig 4's
    // alloc example: λret ∈ {v, FAIL}). Implemented as an eager fork:
    // the child takes the failure return; because this annotation is
    // installed before the MemoryChecker's hook, the failure world
    // never records the chunk. ----------------------------------------
    uint32_t alloc_done = program_.symbol("sys_alloc_done");
    annotation_->at(alloc_done, [](ExecutionState &st, core::Engine &e) {
        // Only inject failures for allocations made *by the unit*:
        // the syscall return pc sits on top of the stack.
        const core::Value &sp = st.cpu.regs[isa::kRegSp];
        if (!sp.isConcrete() || !st.mem.inBounds(sp.concrete(), 4))
            return;
        core::Value caller =
            st.mem.read(sp.concrete(), 4, e.builder());
        if (!caller.isConcrete() || !e.isUnitPc(caller.concrete()))
            return;
        const core::Value &ret = st.cpu.regs[1];
        if (!ret.isConcrete() || ret.concrete() == 0)
            return;
        if (st.pluginState<plugins::CounterState>(&kAllocFailKey)
                ->count++ > 4)
            return; // bound failure-injection depth per path
        ExecutionState *child = e.forkState(st);
        if (!child) {
            // State budget exhausted: the success path continues, the
            // alloc-failure world is skipped. Count it so a sweep can
            // tell "no failure path existed" from "we ran out of room".
            e.stats().add("ddt.alloc_failure_forks_suppressed");
            return;
        }
        child->cpu.regs[1] = core::Value(0u);
    });

    // --- Ioctl arguments: the SetInformation-style symbolic inputs.
    uint32_t ioctl_pc = program_.symbol("drv_ioctl");
    annotation_->at(ioctl_pc, [constrained](ExecutionState &st,
                                            core::Engine &e) {
        e.makeRegSymbolic(st, 1, "ioctl_code",
                          constrained
                              ? std::make_optional(
                                    std::make_pair(1u, 3u))
                              : std::nullopt);
        e.makeRegSymbolic(st, 2, "ioctl_arg",
                          constrained
                              ? std::make_optional(
                                    std::make_pair(0u, 0xFFFFu))
                              : std::nullopt);
    });
}

DdtResult
Ddt::run()
{
    DdtResult result;
    result.run = engine_->run();
    result.pathsExplored = result.run.statesCreated;
    result.solverFailures = result.run.solverFailures;
    result.degradedStates = result.run.degradedStates;

    for (const auto &r : memChecker_->reports()) {
        result.bugs.push_back({r.kind, r.message, r.stateId});
        result.bugKinds.insert(r.kind);
    }
    for (const auto &r : races_->reports()) {
        result.bugs.push_back({r.kind, r.message, r.stateId});
        result.bugKinds.insert(r.kind);
    }
    for (const auto &c : bugCheck_->crashes()) {
        if (c.kind == "kernel-panic") {
            result.bugs.push_back({c.kind, c.message, c.stateId});
            result.bugKinds.insert(c.kind);
        }
    }

    plugins::StaticBlocks blocks = plugins::staticBasicBlocks(
        program_, guest::kDriverCode, guest::kDriverCodeEnd);
    result.driverCoverage = coverage_->coverageFraction(blocks);
    return result;
}

} // namespace s2e::tools
