/**
 * @file
 * REV+: reverse engineering of binary drivers (paper §6.1.2).
 *
 * The online half runs the driver under RC-OC (overapproximate
 * consistency: unconstrained symbolic hardware and configuration) to
 * reach as many basic blocks as fast as possible, recording execution
 * traces with the ExecutionTracer. The offline half reconstructs the
 * driver's control-flow graph from the trace fragments and emits
 * synthesized pseudo-driver code with the hardware protocol (port and
 * MMIO access sequences) attached to each block.
 *
 * The RevNIC baseline (the ad-hoc tool the paper compares against in
 * Table 5) is reproduced as concrete random testing: repeated
 * concrete runs with fuzzed configuration and packets.
 */

#ifndef S2E_TOOLS_REV_HH
#define S2E_TOOLS_REV_HH

#include <map>
#include <memory>
#include <set>

#include "analysis/cfg.hh"
#include "core/engine.hh"
#include "guest/drivers.hh"
#include "plugins/coverage.hh"
#include "plugins/pathkiller.hh"
#include "plugins/tracer.hh"

namespace s2e::tools {

/** Configuration for a REV+ run. */
struct RevConfig {
    guest::DriverKind driver = guest::DriverKind::Dma;
    /** RC-OC per the paper; LC/SC-SE selectable for comparison. */
    core::ConsistencyModel model = core::ConsistencyModel::RcOc;
    uint64_t maxInstructions = 3'000'000;
    double maxWallSeconds = 30.0;
    size_t maxStates = 512;
    uint64_t stagnationBlocks = 20'000;
    /** Exploration worker threads (EngineConfig::numWorkers). */
    unsigned numWorkers = 1;
    /** Fiber-per-state scheduling with the async batched solver
     *  service (EngineConfig::useFibers). */
    bool useFibers = false;
    /** Extract a replay witness for every eligible terminated path. */
    bool emitWitnesses = false;
    /** Optional witness output directory (EngineConfig::witnessDir). */
    std::string witnessDir;
    /** Replay this witness concretely instead of exploring. */
    std::shared_ptr<const core::replay::Witness> replayWitness;
};

/** Reconstructed control-flow graph of the driver. */
struct RecoveredCfg {
    struct Block {
        uint32_t pc = 0;
        std::set<uint32_t> successors;
        /** Hardware accesses observed in this block:
         *  (port, isWrite) pairs. */
        std::set<std::pair<uint32_t, bool>> hardwareAccesses;
        uint64_t timesObserved = 0;
    };
    std::map<uint32_t, Block> blocks;

    size_t blockCount() const { return blocks.size(); }
    size_t edgeCount() const;
    size_t hardwareOpCount() const;
};

/** REV+ run outcome. */
struct RevResult {
    RecoveredCfg cfg;
    double driverCoverage = 0.0;
    /** Coverage-over-time samples (seconds, covered blocks). */
    std::vector<std::pair<double, size_t>> coverageTimeline;
    size_t pathsExplored = 0;
    /** Trace entries lost to ExecutionTracer's per-path cap, summed
     *  over all ingested traces. Non-zero means the recovered CFG was
     *  built from truncated evidence. */
    uint64_t droppedTraceEntries = 0;

    /** What recursive-descent disassembly recovers from the driver
     *  ABI entry points alone (no runtime knowledge: the interrupt
     *  handler hangs off the runtime-written IVT and is invisible). */
    analysis::StaticCfg staticCfg;
    /** Static vs multi-path comparison; dynamicOnly lists the blocks
     *  only in-vivo execution discovered (the REV+ argument). */
    analysis::CfgDiff cfgDiff;

    core::RunResult run;
};

/** The REV+ tool. */
class Rev
{
  public:
    explicit Rev(RevConfig config);
    ~Rev();

    RevResult run();

    core::Engine &engine() { return *engine_; }

    /** Offline synthesis: emit pseudo-driver source from the CFG. */
    static std::string synthesizeDriver(const RecoveredCfg &cfg,
                                        const std::string &name);

  private:
    RevConfig config_;
    isa::Program program_;
    std::unique_ptr<core::Engine> engine_;
    std::unique_ptr<plugins::ExecutionTracer> tracer_;
    std::unique_ptr<plugins::CoverageTracker> coverage_;
    std::unique_ptr<plugins::PathKiller> pathKiller_;
};

/**
 * RevNIC baseline: concrete random testing of the same driver.
 * Each trial is an SC-CE run with fuzzed registry values and packets;
 * coverage accumulates across trials until the budget expires.
 */
struct RevNicBaselineResult {
    double driverCoverage = 0.0;
    std::vector<std::pair<double, size_t>> coverageTimeline;
    size_t trials = 0;
};

RevNicBaselineResult runRevNicBaseline(guest::DriverKind kind,
                                       double maxWallSeconds,
                                       uint64_t maxInstructions,
                                       uint64_t seed = 1);

} // namespace s2e::tools

#endif // S2E_TOOLS_REV_HH
