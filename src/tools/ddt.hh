/**
 * @file
 * DDT+: automated testing of (closed-source) device drivers, the
 * paper's §6.1.1 tool rebuilt as plugin glue.
 *
 * DDT+ composes CodeSelector-style unit restriction (the driver code
 * region is the symbolic domain), the MemoryChecker, DataRaceDetector
 * and BugCheck analyzers, the CoverageTracker + PathKiller selectors,
 * symbolic hardware for the driver's NIC, and — under local
 * consistency — interface annotations that inject symbolic values at
 * the kernel/driver boundary (registry configuration, allocator
 * failure, ioctl arguments) while respecting the API contracts.
 * Without annotations it reverts to SC-SE, where the only symbolic
 * input is the hardware (exactly the paper's setup).
 */

#ifndef S2E_TOOLS_DDT_HH
#define S2E_TOOLS_DDT_HH

#include <memory>
#include <set>

#include "core/engine.hh"
#include "guest/drivers.hh"
#include "plugins/annotation.hh"
#include "plugins/bugcheck.hh"
#include "plugins/coverage.hh"
#include "plugins/memchecker.hh"
#include "plugins/pathkiller.hh"
#include "plugins/racedetector.hh"
#include "plugins/searchers.hh"

namespace s2e::tools {

/** DDT+ configuration. */
struct DdtConfig {
    guest::DriverKind driver = guest::DriverKind::Dma;
    core::ConsistencyModel model = core::ConsistencyModel::Lc;
    /** LC interface annotations (ignored for the SC / RC-CC models
     *  where they do not apply). */
    bool annotations = true;
    uint64_t maxInstructions = 20'000'000;
    double maxWallSeconds = 30.0;
    size_t maxStates = 4096;
    uint32_t pathKillerLoopVisits = 200;
    uint64_t stagnationBlocks = 0; // off: sweeps can starve rare paths
    uint64_t searcherSeed = 42;    // seeded Random path selection
    unsigned numWorkers = 1;
    /** Extract a replay witness for every eligible terminated path. */
    bool emitWitnesses = false;
    /** Optional witness output directory (EngineConfig::witnessDir). */
    std::string witnessDir;
    /** Replay this witness concretely instead of exploring: the engine
     *  goes solver-free and BugCheck input computation is disabled. */
    std::shared_ptr<const core::replay::Witness> replayWitness;
    /** Solver options passthrough (differential runs disable the model
     *  cache so serial and parallel witnesses match byte-for-byte). */
    solver::SolverOptions solverOptions;
};

/** One reproducible bug ("crash dump" + inputs, paper §6.1.1). */
struct DdtBug {
    std::string kind;
    std::string message;
    int stateId;
};

/** DDT+ run outcome. */
struct DdtResult {
    std::vector<DdtBug> bugs;
    std::set<std::string> bugKinds; ///< deduplicated bug classes
    size_t pathsExplored = 0;
    double driverCoverage = 0.0; ///< basic-block fraction
    /** Solver-resilience summary (mirrors run.solverFailures /
     *  run.degradedStates): paths killed by a solver give-up and paths
     *  that survived one via degradation. */
    size_t solverFailures = 0;
    size_t degradedStates = 0;
    core::RunResult run;
};

/** The DDT+ tool. */
class Ddt
{
  public:
    explicit Ddt(DdtConfig config);
    ~Ddt();

    /** Explore the driver and collect bugs. */
    DdtResult run();

    core::Engine &engine() { return *engine_; }
    const plugins::MemoryChecker &memoryChecker() const { return *memChecker_; }
    const plugins::DataRaceDetector &raceDetector() const { return *races_; }
    const plugins::BugCheck &bugCheck() const { return *bugCheck_; }
    const plugins::CoverageTracker &coverage() const { return *coverage_; }

  private:
    void installAnnotations();

    DdtConfig config_;
    isa::Program program_;
    std::unique_ptr<core::Engine> engine_;
    std::unique_ptr<plugins::Annotation> annotation_;
    std::unique_ptr<plugins::MemoryChecker> memChecker_;
    std::unique_ptr<plugins::DataRaceDetector> races_;
    std::unique_ptr<plugins::BugCheck> bugCheck_;
    std::unique_ptr<plugins::CoverageTracker> coverage_;
    std::unique_ptr<plugins::PathKiller> pathKiller_;
};

/** Shared helper: machine config for a kernel+driver+harness system. */
vm::MachineConfig driverMachine(guest::DriverKind kind,
                                const isa::Program &program);

/** Shared helper: assemble kernel + driver + harness. */
isa::Program driverProgram(guest::DriverKind kind);

} // namespace s2e::tools

#endif // S2E_TOOLS_DDT_HH
