/**
 * @file
 * PROFS: multi-path in-vivo performance profiler (paper §6.1.3) —
 * the first use of symbolic execution for performance analysis.
 *
 * PROFS attaches the PerformanceProfile analyzer (instruction counts
 * + simulated cache/TLB/paging hierarchy per path) to a symbolic run
 * of a workload, producing the *performance envelope* over entire
 * input families instead of a single-profile number. It reproduces
 * the paper's three experiments: the Apache-style URL parser (cost
 * linear in '/' count, constant cache misses), the ping client (the
 * record-route infinite loop shows up as an unbounded path), and
 * best-case-input search via path abandonment.
 */

#ifndef S2E_TOOLS_PROFS_HH
#define S2E_TOOLS_PROFS_HH

#include <map>
#include <memory>

#include "core/engine.hh"
#include "plugins/perfprofile.hh"

namespace s2e::tools {

/** PROFS configuration. */
struct ProfsConfig {
    core::ConsistencyModel model = core::ConsistencyModel::Lc;
    perf::MemoryHierarchy::Config hierarchy; ///< paper's default sizes
    uint64_t maxInstructions = 5'000'000;
    double maxWallSeconds = 60.0;
    size_t maxStates = 4096;
    bool findBestCase = false;
    /** A single path exceeding this many instructions is reported as
     *  a suspected unbounded execution (the infinite-loop signal the
     *  ping experiment relies on). */
    uint64_t perPathInstructionCap = 150'000;
};

/** Profiling outcome. */
struct ProfsReport {
    std::vector<plugins::PathPerf> paths;
    plugins::PerformanceProfile::Envelope envelope;
    /** Per-path guest-reported value (the URL parser outputs its
     *  segment count via s2e_out), keyed by state id. */
    std::map<int, uint32_t> guestOutputs;
    /** True when some path never terminated within the budget — the
     *  ping experiment's "no upper bound" signal. */
    bool unboundedSuspected = false;
    double solverSeconds = 0.0;
    double wallSeconds = 0.0;
    core::RunResult run;
};

/** Profile the URL parser over all URLs with `symbolic_len` symbolic
 *  characters (NUL-terminated at that length). */
ProfsReport profileUrlParser(const ProfsConfig &config,
                             unsigned symbolic_len);

/** Profile ping against all 12-byte network replies (loopback DMA
 *  NIC, reply symbolified at the network interface). */
ProfsReport profilePing(const ProfsConfig &config, bool patched);

/**
 * Generic entry point: profile an arbitrary machine. `setup` runs
 * against the initial state before exploration (inject symbolic
 * inputs there).
 */
ProfsReport
profileMachine(const ProfsConfig &config, vm::MachineConfig machine,
               const std::vector<std::pair<uint32_t, uint32_t>> &unit,
               const std::function<void(core::Engine &)> &setup);

} // namespace s2e::tools

#endif // S2E_TOOLS_PROFS_HH
