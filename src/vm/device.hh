/**
 * @file
 * Virtual device interface.
 *
 * Devices are owned per execution path: when the engine forks a state
 * it clone()s every device, which is how S2E keeps virtual device
 * state private to each path (the paper uses QEMU's snapshot
 * mechanism; cloning small device objects is the equivalent here).
 *
 * Devices reach guest memory (DMA) and the interrupt controller only
 * through the DeviceBus callbacks supplied by the engine, so the
 * engine can interpose (e.g. concretize symbolic bytes that a DMA
 * read touches, per the active consistency model).
 */

#ifndef S2E_VM_DEVICE_HH
#define S2E_VM_DEVICE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace s2e::vm {

/** Engine-provided callbacks a device uses during an access or tick. */
struct DeviceBus {
    /** Read one byte of guest physical memory (concretized view). */
    std::function<uint8_t(uint32_t addr)> readMem;
    /** Write one byte of guest physical memory. */
    std::function<void(uint32_t addr, uint8_t value)> writeMem;
    /** Assert an interrupt line. */
    std::function<void(unsigned irq)> raiseIrq;
};

/**
 * Base class for all virtual devices. Subclasses must be copyable via
 * clone() with no shared mutable state between the copies.
 */
class Device
{
  public:
    virtual ~Device() = default;

    virtual const std::string &name() const = 0;

    /** Deep copy for state forking. */
    virtual std::unique_ptr<Device> clone() const = 0;

    virtual void reset() {}

    // --- Port I/O ----------------------------------------------------

    /** Does this device decode the given I/O port? */
    virtual bool ownsPort(uint16_t port) const
    {
        (void)port;
        return false;
    }
    virtual uint32_t
    ioRead(uint16_t port, DeviceBus &bus)
    {
        (void)port;
        (void)bus;
        return 0;
    }
    virtual void
    ioWrite(uint16_t port, uint32_t value, DeviceBus &bus)
    {
        (void)port;
        (void)value;
        (void)bus;
    }

    // --- MMIO ----------------------------------------------------------

    /** Does this device decode the given physical address? */
    virtual bool ownsMmio(uint32_t addr) const
    {
        (void)addr;
        return false;
    }
    virtual uint32_t
    mmioRead(uint32_t addr, unsigned size, DeviceBus &bus)
    {
        (void)addr;
        (void)size;
        (void)bus;
        return 0;
    }
    virtual void
    mmioWrite(uint32_t addr, uint32_t value, unsigned size, DeviceBus &bus)
    {
        (void)addr;
        (void)value;
        (void)size;
        (void)bus;
    }

    // --- Virtual time --------------------------------------------------

    /**
     * Advance device time. `now` is the state's virtual instruction
     * count; each state has its own virtual clock that freezes while
     * the state is not being run (paper §5).
     */
    virtual void
    tick(uint64_t now, DeviceBus &bus)
    {
        (void)now;
        (void)bus;
    }
};

/** MMIO window base: physical addresses at or above this are devices. */
constexpr uint32_t kMmioBase = 0xF0000000u;

/** Interrupt vector table: 32 vectors of 4 bytes each. */
constexpr uint32_t kIvtBase = 0x100;
constexpr unsigned kNumIrqs = 32;

/** Well-known IRQ lines. */
constexpr unsigned kIrqTimer = 0;
constexpr unsigned kIrqNic = 1;
constexpr unsigned kIrqDisk = 2;
/** Software interrupt vector used for system calls by convention. */
constexpr unsigned kSyscallVector = 0x30;

} // namespace s2e::vm

#endif // S2E_VM_DEVICE_HH
