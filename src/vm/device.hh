/**
 * @file
 * Virtual device interface.
 *
 * Devices are owned per execution path: when the engine forks a state
 * it clone()s every device, which is how S2E keeps virtual device
 * state private to each path (the paper uses QEMU's snapshot
 * mechanism; cloning small device objects is the equivalent here).
 *
 * Devices reach guest memory (DMA) and the interrupt controller only
 * through the DeviceBus callbacks supplied by the engine, so the
 * engine can interpose (e.g. concretize symbolic bytes that a DMA
 * read touches, per the active consistency model).
 */

#ifndef S2E_VM_DEVICE_HH
#define S2E_VM_DEVICE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace s2e::vm {

/** Engine-provided callbacks a device uses during an access or tick. */
struct DeviceBus {
    /** Read one byte of guest physical memory (concretized view). */
    std::function<uint8_t(uint32_t addr)> readMem;
    /** Write one byte of guest physical memory. */
    std::function<void(uint32_t addr, uint8_t value)> writeMem;
    /** Assert an interrupt line. */
    std::function<void(unsigned irq)> raiseIrq;
};

/**
 * Incremental FNV-1a accumulator for Device::stateDigest()
 * implementations: fold in every mutable field, in a fixed order.
 */
class StateHasher
{
  public:
    void
    bytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= 0x100000001b3ull;
        }
    }

    template <typename T>
    void
    value(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "hash trivially copyable values only");
        bytes(&v, sizeof(v));
    }

    void
    str(const std::string &s)
    {
        value<uint64_t>(s.size());
        bytes(s.data(), s.size());
    }

    void
    blob(const std::vector<uint8_t> &v)
    {
        value<uint64_t>(v.size());
        bytes(v.data(), v.size());
    }

    uint64_t digest() const { return h_; }

  private:
    uint64_t h_ = 0xcbf29ce484222325ull;
};

/**
 * Base class for all virtual devices. Subclasses must be copyable via
 * clone() with no shared mutable state between the copies.
 */
class Device
{
  public:
    virtual ~Device() = default;

    /** Returned by stateDigest() when a device cannot summarize its
     *  state; state merging is then refused for the owning paths. */
    static constexpr uint64_t kNoStateDigest = ~0ull;

    virtual const std::string &name() const = 0;

    /** Deep copy for state forking. */
    virtual std::unique_ptr<Device> clone() const = 0;

    /**
     * Digest of all mutable device state, used by the s2e_merge_point
     * machinery: two sibling states may only be ITE-merged when every
     * device pair digests identically (device state cannot be made
     * conditional on the merge selector). Defaults to opting out.
     */
    virtual uint64_t stateDigest() const { return kNoStateDigest; }

    virtual void reset() {}

    // --- Port I/O ----------------------------------------------------

    /** Does this device decode the given I/O port? */
    virtual bool ownsPort(uint16_t port) const
    {
        (void)port;
        return false;
    }
    virtual uint32_t
    ioRead(uint16_t port, DeviceBus &bus)
    {
        (void)port;
        (void)bus;
        return 0;
    }
    virtual void
    ioWrite(uint16_t port, uint32_t value, DeviceBus &bus)
    {
        (void)port;
        (void)value;
        (void)bus;
    }

    // --- MMIO ----------------------------------------------------------

    /** Does this device decode the given physical address? */
    virtual bool ownsMmio(uint32_t addr) const
    {
        (void)addr;
        return false;
    }
    virtual uint32_t
    mmioRead(uint32_t addr, unsigned size, DeviceBus &bus)
    {
        (void)addr;
        (void)size;
        (void)bus;
        return 0;
    }
    virtual void
    mmioWrite(uint32_t addr, uint32_t value, unsigned size, DeviceBus &bus)
    {
        (void)addr;
        (void)value;
        (void)size;
        (void)bus;
    }

    // --- Virtual time --------------------------------------------------

    /**
     * Advance device time. `now` is the state's virtual instruction
     * count; each state has its own virtual clock that freezes while
     * the state is not being run (paper §5).
     */
    virtual void
    tick(uint64_t now, DeviceBus &bus)
    {
        (void)now;
        (void)bus;
    }
};

/** MMIO window base: physical addresses at or above this are devices. */
constexpr uint32_t kMmioBase = 0xF0000000u;

/** Interrupt vector table: 32 vectors of 4 bytes each. */
constexpr uint32_t kIvtBase = 0x100;
constexpr unsigned kNumIrqs = 32;

/** Well-known IRQ lines. */
constexpr unsigned kIrqTimer = 0;
constexpr unsigned kIrqNic = 1;
constexpr unsigned kIrqDisk = 2;
/** Software interrupt vector used for system calls by convention. */
constexpr unsigned kSyscallVector = 0x30;

} // namespace s2e::vm

#endif // S2E_VM_DEVICE_HH
