/**
 * @file
 * Basic virtual devices: console, timer, block disk.
 */

#ifndef S2E_VM_DEVICES_HH
#define S2E_VM_DEVICES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "vm/device.hh"

namespace s2e::vm {

/**
 * Write-only character console on port 0x10 (data) with a status port
 * 0x11 that always reads ready. Output accumulates per path, so each
 * execution path has its own console transcript.
 */
class ConsoleDevice : public Device
{
  public:
    static constexpr uint16_t kDataPort = 0x10;
    static constexpr uint16_t kStatusPort = 0x11;

    const std::string &name() const override { return name_; }
    std::unique_ptr<Device> clone() const override
    {
        return std::make_unique<ConsoleDevice>(*this);
    }

    bool
    ownsPort(uint16_t port) const override
    {
        return port == kDataPort || port == kStatusPort;
    }

    uint32_t
    ioRead(uint16_t port, DeviceBus &) override
    {
        return port == kStatusPort ? 1 : 0;
    }

    void
    ioWrite(uint16_t port, uint32_t value, DeviceBus &) override
    {
        if (port == kDataPort)
            output_ += static_cast<char>(value & 0xFF);
    }

    /** Everything the guest printed on this path. */
    const std::string &output() const { return output_; }

    uint64_t
    stateDigest() const override
    {
        StateHasher h;
        h.str(output_);
        return h.digest();
    }

  private:
    std::string name_ = "console";
    std::string output_;
};

/**
 * Periodic timer raising kIrqTimer every `period` virtual instructions
 * once started. Ports: 0x20 control (1 = start, 0 = stop), 0x21 period
 * (32-bit), 0x22 current tick count (read-only).
 */
class TimerDevice : public Device
{
  public:
    static constexpr uint16_t kCtrlPort = 0x20;
    static constexpr uint16_t kPeriodPort = 0x21;
    static constexpr uint16_t kCountPort = 0x22;

    const std::string &name() const override { return name_; }
    std::unique_ptr<Device> clone() const override
    {
        return std::make_unique<TimerDevice>(*this);
    }

    bool
    ownsPort(uint16_t port) const override
    {
        return port >= kCtrlPort && port <= kCountPort;
    }

    uint32_t
    ioRead(uint16_t port, DeviceBus &) override
    {
        switch (port) {
          case kCtrlPort: return running_ ? 1 : 0;
          case kPeriodPort: return period_;
          case kCountPort: return static_cast<uint32_t>(ticks_);
          default: return 0;
        }
    }

    void
    ioWrite(uint16_t port, uint32_t value, DeviceBus &) override
    {
        switch (port) {
          case kCtrlPort:
            running_ = (value & 1) != 0;
            armed_ = false;
            break;
          case kPeriodPort:
            period_ = value ? value : 1;
            break;
          default:
            break;
        }
    }

    void
    tick(uint64_t now, DeviceBus &bus) override
    {
        if (!running_)
            return;
        if (!armed_) {
            next_ = now + period_;
            armed_ = true;
            return;
        }
        if (now >= next_) {
            ticks_++;
            next_ = now + period_;
            bus.raiseIrq(kIrqTimer);
        }
    }

    uint64_t tickCount() const { return ticks_; }

    uint64_t
    stateDigest() const override
    {
        StateHasher h;
        h.value(running_);
        h.value(armed_);
        h.value(period_);
        h.value(next_);
        h.value(ticks_);
        return h.digest();
    }

  private:
    std::string name_ = "timer";
    bool running_ = false;
    bool armed_ = false;
    uint32_t period_ = 1000;
    uint64_t next_ = 0;
    uint64_t ticks_ = 0;
};

/**
 * Simple DMA block disk, 512-byte sectors.
 * Ports: 0x30 command (1 = read, 2 = write), 0x31 sector number,
 * 0x32 DMA address, 0x33 status (1 = ok, 2 = error).
 * Completion raises kIrqDisk.
 */
class DiskDevice : public Device
{
  public:
    static constexpr uint16_t kCmdPort = 0x30;
    static constexpr uint16_t kSectorPort = 0x31;
    static constexpr uint16_t kAddrPort = 0x32;
    static constexpr uint16_t kStatusPort = 0x33;
    static constexpr unsigned kSectorSize = 512;

    explicit DiskDevice(unsigned num_sectors = 64)
        : data_(num_sectors * kSectorSize, 0)
    {
    }

    const std::string &name() const override { return name_; }
    std::unique_ptr<Device> clone() const override
    {
        return std::make_unique<DiskDevice>(*this);
    }

    bool
    ownsPort(uint16_t port) const override
    {
        return port >= kCmdPort && port <= kStatusPort;
    }

    uint32_t
    ioRead(uint16_t port, DeviceBus &) override
    {
        switch (port) {
          case kStatusPort: return status_;
          case kSectorPort: return sector_;
          case kAddrPort: return addr_;
          default: return 0;
        }
    }

    void
    ioWrite(uint16_t port, uint32_t value, DeviceBus &bus) override
    {
        switch (port) {
          case kSectorPort:
            sector_ = value;
            break;
          case kAddrPort:
            addr_ = value;
            break;
          case kCmdPort: {
            uint64_t offset =
                static_cast<uint64_t>(sector_) * kSectorSize;
            if (offset + kSectorSize > data_.size()) {
                status_ = 2;
                break;
            }
            if (value == 1) { // read sector -> memory
                for (unsigned i = 0; i < kSectorSize; ++i)
                    bus.writeMem(addr_ + i, data_[offset + i]);
                status_ = 1;
                bus.raiseIrq(kIrqDisk);
            } else if (value == 2) { // write memory -> sector
                for (unsigned i = 0; i < kSectorSize; ++i)
                    data_[offset + i] = bus.readMem(addr_ + i);
                status_ = 1;
                bus.raiseIrq(kIrqDisk);
            } else {
                status_ = 2;
            }
            break;
          }
          default:
            break;
        }
    }

    /** Direct backing-store access for test harnesses. */
    std::vector<uint8_t> &data() { return data_; }
    const std::vector<uint8_t> &data() const { return data_; }

    uint64_t
    stateDigest() const override
    {
        StateHasher h;
        h.blob(data_);
        h.value(sector_);
        h.value(addr_);
        h.value(status_);
        return h.digest();
    }

  private:
    std::string name_ = "disk";
    std::vector<uint8_t> data_;
    uint32_t sector_ = 0;
    uint32_t addr_ = 0;
    uint32_t status_ = 0;
};

} // namespace s2e::vm

#endif // S2E_VM_DEVICES_HH
