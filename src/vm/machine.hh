/**
 * @file
 * Machine configuration and the per-path device set.
 */

#ifndef S2E_VM_MACHINE_HH
#define S2E_VM_MACHINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "isa/assembler.hh"
#include "vm/device.hh"

namespace s2e::vm {

/**
 * The devices attached to one execution path. Cloned on fork so every
 * path owns private device state (paper §5's snapshot mechanism).
 */
class DeviceSet
{
  public:
    DeviceSet() = default;
    DeviceSet(const DeviceSet &other)
    {
        devices_.reserve(other.devices_.size());
        for (const auto &d : other.devices_)
            devices_.push_back(d->clone());
    }
    DeviceSet &operator=(const DeviceSet &) = delete;
    DeviceSet(DeviceSet &&) = default;
    DeviceSet &operator=(DeviceSet &&) = default;

    void add(std::unique_ptr<Device> device)
    {
        devices_.push_back(std::move(device));
    }

    /** Device decoding an I/O port, or nullptr. */
    Device *
    findPort(uint16_t port) const
    {
        for (const auto &d : devices_)
            if (d->ownsPort(port))
                return d.get();
        return nullptr;
    }

    /** Device decoding a physical MMIO address, or nullptr. */
    Device *
    findMmio(uint32_t addr) const
    {
        for (const auto &d : devices_)
            if (d->ownsMmio(addr))
                return d.get();
        return nullptr;
    }

    Device *
    byName(const std::string &name) const
    {
        for (const auto &d : devices_)
            if (d->name() == name)
                return d.get();
        return nullptr;
    }

    /** Typed lookup by name. */
    template <typename T>
    T *
    get(const std::string &name) const
    {
        return dynamic_cast<T *>(byName(name));
    }

    void
    tickAll(uint64_t now, DeviceBus &bus) const
    {
        for (const auto &d : devices_)
            d->tick(now, bus);
    }

    size_t size() const { return devices_.size(); }

    Device *
    deviceAt(size_t idx) const
    {
        return devices_[idx].get();
    }

    /**
     * Combined digest over all devices (in attach order). Returns
     * Device::kNoStateDigest as soon as any device opts out, so a set
     * containing an undigestable device can never satisfy a merge
     * compatibility check.
     */
    uint64_t
    stateDigest() const
    {
        StateHasher h;
        for (const auto &d : devices_) {
            uint64_t dd = d->stateDigest();
            if (dd == Device::kNoStateDigest)
                return Device::kNoStateDigest;
            h.str(d->name());
            h.value(dd);
        }
        return h.digest();
    }

  private:
    std::vector<std::unique_ptr<Device>> devices_;
};

/** Static description of the machine a run starts from. */
struct MachineConfig {
    uint32_t ramSize = 4 * 1024 * 1024;
    isa::Program program;
    /** Populates the initial device set. */
    std::function<void(DeviceSet &)> deviceSetup;
};

} // namespace s2e::vm

#endif // S2E_VM_MACHINE_HH
