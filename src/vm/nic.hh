/**
 * @file
 * Virtual network interface cards.
 *
 * Four NIC models with deliberately different hardware protocols,
 * standing in for the four closed-source Windows drivers of the
 * paper's evaluation (Table 5): PIO FIFO ("rtl8029-like"), register
 * DMA ("pcnet-like"), bank-switched MMIO ("91c111-like") and DMA ring
 * buffer ("rtl8139-like"). The guest drivers in src/guest implement
 * one protocol each, so coverage/consistency experiments exercise
 * genuinely different unit/environment interactions.
 */

#ifndef S2E_VM_NIC_HH
#define S2E_VM_NIC_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "vm/device.hh"

namespace s2e::vm {

/** Shared behavior: packet queues, loopback, host-side injection. */
class NicBase : public Device
{
  public:
    /** Queue a packet for guest reception (host/test side). */
    void
    injectPacket(std::vector<uint8_t> packet)
    {
        rxQueue_.push_back(std::move(packet));
    }

    /** Packets transmitted by the guest on this path. */
    const std::vector<std::vector<uint8_t>> &transmitted() const
    {
        return txLog_;
    }

    /** In loopback mode, transmitted packets re-enter the RX queue. */
    void setLoopback(bool on) { loopback_ = on; }

    bool rxPending() const { return !rxQueue_.empty(); }

  protected:
    /** Fold the shared NIC state into a digest (see stateDigest()). */
    void
    digestBase(StateHasher &h) const
    {
        h.value<uint64_t>(rxQueue_.size());
        for (const auto &p : rxQueue_)
            h.blob(p);
        h.value<uint64_t>(txLog_.size());
        for (const auto &p : txLog_)
            h.blob(p);
        h.value(loopback_);
    }

    void
    completeTx(std::vector<uint8_t> packet)
    {
        if (loopback_)
            rxQueue_.push_back(packet);
        txLog_.push_back(std::move(packet));
    }

    std::deque<std::vector<uint8_t>> rxQueue_;
    std::vector<std::vector<uint8_t>> txLog_;
    bool loopback_ = false;
};

/**
 * PIO-FIFO NIC ("rtl8029-like"), ports 0x40..0x47.
 *
 * TX: write TXLEN, push TXLEN bytes through DATA, then CMD=TX.
 * RX: poll STATUS.RXRDY, read RXLEN, pull RXLEN bytes from DATA,
 *     then CMD=RXACK. IRQ kIrqNic on TX done / RX ready when IEN set.
 */
class PioNic : public NicBase
{
  public:
    static constexpr uint16_t kBase = 0x40;
    static constexpr uint16_t kCmd = kBase + 0;
    static constexpr uint16_t kStatus = kBase + 1;
    static constexpr uint16_t kData = kBase + 2;
    static constexpr uint16_t kTxLen = kBase + 3;
    static constexpr uint16_t kRxLen = kBase + 4;
    static constexpr uint16_t kMacIdx = kBase + 5;
    static constexpr uint16_t kMacVal = kBase + 6;
    static constexpr uint16_t kCfg = kBase + 7;

    // CMD bits
    static constexpr uint32_t kCmdReset = 1;
    static constexpr uint32_t kCmdTx = 2;
    static constexpr uint32_t kCmdRxAck = 4;
    static constexpr uint32_t kCmdIen = 8;
    // STATUS bits
    static constexpr uint32_t kStReady = 1;
    static constexpr uint32_t kStTxDone = 2;
    static constexpr uint32_t kStRxRdy = 4;
    static constexpr uint32_t kStError = 8;

    const std::string &name() const override { return name_; }
    std::unique_ptr<Device> clone() const override
    {
        return std::make_unique<PioNic>(*this);
    }
    void reset() override;

    bool
    ownsPort(uint16_t port) const override
    {
        return port >= kBase && port <= kCfg;
    }
    uint32_t ioRead(uint16_t port, DeviceBus &bus) override;
    void ioWrite(uint16_t port, uint32_t value, DeviceBus &bus) override;

    uint64_t
    stateDigest() const override
    {
        StateHasher h;
        digestBase(h);
        h.value(status_);
        h.value(txLen_);
        h.value(ien_);
        h.value(macIdx_);
        h.bytes(mac_, sizeof(mac_));
        h.blob(txFifo_);
        h.value<uint64_t>(rxPos_);
        return h.digest();
    }

  private:
    std::string name_ = "pionic";
    uint32_t status_ = kStReady;
    uint32_t txLen_ = 0;
    bool ien_ = false;
    uint8_t macIdx_ = 0;
    uint8_t mac_[6] = {0x52, 0x2e, 0x29, 0x00, 0x00, 0x01};
    std::vector<uint8_t> txFifo_;
    size_t rxPos_ = 0;
};

/**
 * Register-DMA NIC ("pcnet-like"), ports 0x50..0x57.
 *
 * TX: program TXADDR/TXLEN, CMD=TXSTART; device DMA-reads the packet.
 * RX: program RXADDR/RXBUFSZ, CMD=RXFETCH; device DMA-writes the
 *     packet (truncated to the buffer) and latches RXLEN.
 */
class DmaNic : public NicBase
{
  public:
    static constexpr uint16_t kBase = 0x50;
    static constexpr uint16_t kCmd = kBase + 0;
    static constexpr uint16_t kStatus = kBase + 1;
    static constexpr uint16_t kTxAddr = kBase + 2;
    static constexpr uint16_t kTxLen = kBase + 3;
    static constexpr uint16_t kRxAddr = kBase + 4;
    static constexpr uint16_t kRxBufSz = kBase + 5;
    static constexpr uint16_t kRxLen = kBase + 6;
    static constexpr uint16_t kCardType = kBase + 7; ///< config probe

    static constexpr uint32_t kCmdReset = 1;
    static constexpr uint32_t kCmdTxStart = 2;
    static constexpr uint32_t kCmdRxFetch = 4;
    static constexpr uint32_t kCmdIen = 8;

    static constexpr uint32_t kStReady = 1;
    static constexpr uint32_t kStTxDone = 2;
    static constexpr uint32_t kStRxRdy = 4;
    static constexpr uint32_t kStError = 8;

    const std::string &name() const override { return name_; }
    std::unique_ptr<Device> clone() const override
    {
        return std::make_unique<DmaNic>(*this);
    }
    void reset() override;

    bool
    ownsPort(uint16_t port) const override
    {
        return port >= kBase && port <= kCardType;
    }
    uint32_t ioRead(uint16_t port, DeviceBus &bus) override;
    void ioWrite(uint16_t port, uint32_t value, DeviceBus &bus) override;

    uint64_t
    stateDigest() const override
    {
        StateHasher h;
        digestBase(h);
        h.value(status_);
        h.value(txAddr_);
        h.value(txLen_);
        h.value(rxAddr_);
        h.value(rxBufSz_);
        h.value(rxLen_);
        h.value(ien_);
        return h.digest();
    }

  private:
    std::string name_ = "dmanic";
    uint32_t status_ = kStReady;
    uint32_t txAddr_ = 0, txLen_ = 0;
    uint32_t rxAddr_ = 0, rxBufSz_ = 0, rxLen_ = 0;
    bool ien_ = false;
};

/**
 * Bank-switched MMIO NIC ("91c111-like"), MMIO at 0xF0001000..0xF000100F.
 *
 * Offset 0xE selects the register bank; banks expose control (0),
 * MAC configuration (1) and a data FIFO window (2). All accesses are
 * 32-bit MMIO.
 */
class MmioNic : public NicBase
{
  public:
    static constexpr uint32_t kBase = 0xF0001000u;
    static constexpr uint32_t kSize = 0x10;
    static constexpr uint32_t kBankReg = 0xE;

    // Bank 0 registers
    static constexpr uint32_t kB0Ctrl = 0x0;   ///< bit0 txen, bit1 rxen, bit2 ien
    static constexpr uint32_t kB0Status = 0x4; ///< ready/txdone/rxrdy
    static constexpr uint32_t kB0Cmd = 0x8;    ///< 1 reset, 2 tx, 4 rxack
    // Bank 1 registers
    static constexpr uint32_t kB1MacLo = 0x0;
    static constexpr uint32_t kB1MacHi = 0x4;
    // Bank 2 registers
    static constexpr uint32_t kB2Fifo = 0x0;  ///< byte-wise FIFO window
    static constexpr uint32_t kB2TxLen = 0x4;
    static constexpr uint32_t kB2RxLen = 0x8;

    static constexpr uint32_t kStReady = 1;
    static constexpr uint32_t kStTxDone = 2;
    static constexpr uint32_t kStRxRdy = 4;

    const std::string &name() const override { return name_; }
    std::unique_ptr<Device> clone() const override
    {
        return std::make_unique<MmioNic>(*this);
    }
    void reset() override;

    bool
    ownsMmio(uint32_t addr) const override
    {
        return addr >= kBase && addr < kBase + kSize;
    }
    uint32_t mmioRead(uint32_t addr, unsigned size, DeviceBus &bus) override;
    void mmioWrite(uint32_t addr, uint32_t value, unsigned size,
                   DeviceBus &bus) override;

    uint64_t
    stateDigest() const override
    {
        StateHasher h;
        digestBase(h);
        h.value(bank_);
        h.value(ctrl_);
        h.value(status_);
        h.value(txLen_);
        h.value(macLo_);
        h.value(macHi_);
        h.blob(txFifo_);
        h.value<uint64_t>(rxPos_);
        return h.digest();
    }

  private:
    std::string name_ = "mmionic";
    uint32_t bank_ = 0;
    uint32_t ctrl_ = 0;
    uint32_t status_ = kStReady;
    uint32_t txLen_ = 0;
    uint32_t macLo_ = 0x292e5352, macHi_ = 0x0200;
    std::vector<uint8_t> txFifo_;
    size_t rxPos_ = 0;
};

/**
 * Ring-buffer DMA NIC ("rtl8139-like"), ports 0x60..0x67.
 *
 * The driver programs a receive ring (RINGADDR, RINGSZ). The device
 * DMA-writes each packet into the ring prefixed by a 4-byte length
 * header, advancing the write pointer with wraparound; the driver
 * consumes from its read pointer and publishes it via RDPTR. TX uses
 * two descriptor slots.
 */
class RingNic : public NicBase
{
  public:
    static constexpr uint16_t kBase = 0x60;
    static constexpr uint16_t kCmd = kBase + 0;
    static constexpr uint16_t kStatus = kBase + 1;
    static constexpr uint16_t kRingAddr = kBase + 2;
    static constexpr uint16_t kRingSize = kBase + 3;
    static constexpr uint16_t kWrPtr = kBase + 4; ///< read-only
    static constexpr uint16_t kRdPtr = kBase + 5; ///< driver-advanced
    static constexpr uint16_t kTxAddr0 = kBase + 6;
    static constexpr uint16_t kTxLen0 = kBase + 7;

    static constexpr uint32_t kCmdReset = 1;
    static constexpr uint32_t kCmdTx0 = 2;
    static constexpr uint32_t kCmdRxEnable = 4;
    static constexpr uint32_t kCmdIen = 8;

    static constexpr uint32_t kStReady = 1;
    static constexpr uint32_t kStTxDone = 2;
    static constexpr uint32_t kStRxRdy = 4;
    static constexpr uint32_t kStRingOverflow = 8;

    const std::string &name() const override { return name_; }
    std::unique_ptr<Device> clone() const override
    {
        return std::make_unique<RingNic>(*this);
    }
    void reset() override;

    bool
    ownsPort(uint16_t port) const override
    {
        return port >= kBase && port <= kTxLen0;
    }
    uint32_t ioRead(uint16_t port, DeviceBus &bus) override;
    void ioWrite(uint16_t port, uint32_t value, DeviceBus &bus) override;
    void tick(uint64_t now, DeviceBus &bus) override;

    uint64_t
    stateDigest() const override
    {
        StateHasher h;
        digestBase(h);
        h.value(status_);
        h.value(ringAddr_);
        h.value(ringSize_);
        h.value(wrPtr_);
        h.value(rdPtr_);
        h.value(txAddr_);
        h.value(txLen_);
        h.value(rxEnabled_);
        h.value(ien_);
        return h.digest();
    }

  private:
    void deliverPending(DeviceBus &bus);

    std::string name_ = "ringnic";
    uint32_t status_ = kStReady;
    uint32_t ringAddr_ = 0, ringSize_ = 0;
    uint32_t wrPtr_ = 0, rdPtr_ = 0;
    uint32_t txAddr_ = 0, txLen_ = 0;
    bool rxEnabled_ = false;
    bool ien_ = false;
};

} // namespace s2e::vm

#endif // S2E_VM_NIC_HH
