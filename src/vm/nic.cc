#include "vm/nic.hh"

#include "support/logging.hh"

namespace s2e::vm {

// --- PioNic ------------------------------------------------------------

void
PioNic::reset()
{
    status_ = kStReady;
    txLen_ = 0;
    ien_ = false;
    macIdx_ = 0;
    txFifo_.clear();
    rxPos_ = 0;
}

uint32_t
PioNic::ioRead(uint16_t port, DeviceBus &)
{
    switch (port) {
      case kStatus: {
        uint32_t st = status_;
        if (!rxQueue_.empty())
            st |= kStRxRdy;
        return st;
      }
      case kRxLen:
        return rxQueue_.empty()
                   ? 0
                   : static_cast<uint32_t>(rxQueue_.front().size());
      case kData: {
        if (rxQueue_.empty())
            return 0;
        const auto &pkt = rxQueue_.front();
        if (rxPos_ >= pkt.size()) {
            status_ |= kStError;
            return 0;
        }
        return pkt[rxPos_++];
      }
      case kMacVal:
        return macIdx_ < 6 ? mac_[macIdx_] : 0xFF;
      case kTxLen:
        return txLen_;
      default:
        return 0;
    }
}

void
PioNic::ioWrite(uint16_t port, uint32_t value, DeviceBus &bus)
{
    switch (port) {
      case kTxLen:
        txLen_ = value;
        txFifo_.clear();
        break;
      case kData:
        txFifo_.push_back(static_cast<uint8_t>(value));
        break;
      case kMacIdx:
        macIdx_ = static_cast<uint8_t>(value);
        break;
      case kCmd:
        if (value & kCmdReset)
            reset();
        if (value & kCmdIen)
            ien_ = true;
        if (value & kCmdTx) {
            if (txFifo_.size() != txLen_ || txLen_ == 0) {
                status_ |= kStError;
            } else {
                completeTx(txFifo_);
                txFifo_.clear();
                status_ |= kStTxDone;
                if (ien_)
                    bus.raiseIrq(kIrqNic);
            }
        }
        if (value & kCmdRxAck) {
            if (!rxQueue_.empty())
                rxQueue_.pop_front();
            rxPos_ = 0;
            if (!rxQueue_.empty() && ien_)
                bus.raiseIrq(kIrqNic);
        }
        break;
      default:
        break;
    }
}

// --- DmaNic ------------------------------------------------------------

void
DmaNic::reset()
{
    status_ = kStReady;
    txAddr_ = txLen_ = 0;
    rxAddr_ = rxBufSz_ = rxLen_ = 0;
    ien_ = false;
}

uint32_t
DmaNic::ioRead(uint16_t port, DeviceBus &)
{
    switch (port) {
      case kStatus: {
        uint32_t st = status_;
        if (!rxQueue_.empty())
            st |= kStRxRdy;
        return st;
      }
      case kTxAddr: return txAddr_;
      case kTxLen: return txLen_;
      case kRxAddr: return rxAddr_;
      case kRxBufSz: return rxBufSz_;
      case kRxLen:
        // Before a fetch this reports the pending frame's length (the
        // "current frame length" register drivers read to size their
        // copy loops); after a fetch it latches the DMA'd length.
        return rxQueue_.empty()
                   ? rxLen_
                   : static_cast<uint32_t>(rxQueue_.front().size());
      case kCardType: return 0x2621; // "PCnet/PCI II"-style probe id
      default: return 0;
    }
}

void
DmaNic::ioWrite(uint16_t port, uint32_t value, DeviceBus &bus)
{
    switch (port) {
      case kTxAddr: txAddr_ = value; break;
      case kTxLen: txLen_ = value; break;
      case kRxAddr: rxAddr_ = value; break;
      case kRxBufSz: rxBufSz_ = value; break;
      case kCmd:
        if (value & kCmdReset)
            reset();
        if (value & kCmdIen)
            ien_ = true;
        if (value & kCmdTxStart) {
            if (txLen_ == 0 || txLen_ > 4096) {
                status_ |= kStError;
            } else {
                std::vector<uint8_t> pkt(txLen_);
                for (uint32_t i = 0; i < txLen_; ++i)
                    pkt[i] = bus.readMem(txAddr_ + i);
                completeTx(std::move(pkt));
                status_ |= kStTxDone;
                if (ien_)
                    bus.raiseIrq(kIrqNic);
            }
        }
        if (value & kCmdRxFetch) {
            if (rxQueue_.empty()) {
                status_ |= kStError;
            } else {
                const auto &pkt = rxQueue_.front();
                uint32_t n = static_cast<uint32_t>(pkt.size());
                if (n > rxBufSz_)
                    n = rxBufSz_;
                for (uint32_t i = 0; i < n; ++i)
                    bus.writeMem(rxAddr_ + i, pkt[i]);
                rxLen_ = n;
                rxQueue_.pop_front();
                if (ien_)
                    bus.raiseIrq(kIrqNic);
            }
        }
        break;
      default:
        break;
    }
}

// --- MmioNic -----------------------------------------------------------

void
MmioNic::reset()
{
    bank_ = 0;
    ctrl_ = 0;
    status_ = kStReady;
    txLen_ = 0;
    txFifo_.clear();
    rxPos_ = 0;
}

uint32_t
MmioNic::mmioRead(uint32_t addr, unsigned, DeviceBus &)
{
    uint32_t off = addr - kBase;
    if (off == kBankReg)
        return bank_;
    switch (bank_) {
      case 0:
        switch (off) {
          case kB0Ctrl: return ctrl_;
          case kB0Status: {
            uint32_t st = status_;
            if (!rxQueue_.empty() && (ctrl_ & 2))
                st |= kStRxRdy;
            return st;
          }
          default: return 0;
        }
      case 1:
        switch (off) {
          case kB1MacLo: return macLo_;
          case kB1MacHi: return macHi_;
          default: return 0;
        }
      case 2:
        switch (off) {
          case kB2Fifo: {
            if (rxQueue_.empty())
                return 0;
            const auto &pkt = rxQueue_.front();
            if (rxPos_ >= pkt.size())
                return 0;
            return pkt[rxPos_++];
          }
          case kB2TxLen: return txLen_;
          case kB2RxLen:
            return rxQueue_.empty()
                       ? 0
                       : static_cast<uint32_t>(rxQueue_.front().size());
          default: return 0;
        }
      default:
        return 0;
    }
}

void
MmioNic::mmioWrite(uint32_t addr, uint32_t value, unsigned, DeviceBus &bus)
{
    uint32_t off = addr - kBase;
    if (off == kBankReg) {
        bank_ = value & 3;
        return;
    }
    switch (bank_) {
      case 0:
        if (off == kB0Ctrl) {
            ctrl_ = value;
        } else if (off == kB0Cmd) {
            if (value & 1)
                reset();
            if (value & 2) { // TX
                if (!(ctrl_ & 1) || txFifo_.size() != txLen_ ||
                    txLen_ == 0) {
                    // tx disabled or bad fifo fill: drop
                } else {
                    completeTx(txFifo_);
                    txFifo_.clear();
                    status_ |= kStTxDone;
                    if (ctrl_ & 4)
                        bus.raiseIrq(kIrqNic);
                }
            }
            if (value & 4) { // RXACK
                if (!rxQueue_.empty())
                    rxQueue_.pop_front();
                rxPos_ = 0;
                if (!rxQueue_.empty() && (ctrl_ & 4))
                    bus.raiseIrq(kIrqNic);
            }
        }
        break;
      case 1:
        if (off == kB1MacLo)
            macLo_ = value;
        else if (off == kB1MacHi)
            macHi_ = value;
        break;
      case 2:
        if (off == kB2Fifo)
            txFifo_.push_back(static_cast<uint8_t>(value));
        else if (off == kB2TxLen) {
            txLen_ = value;
            txFifo_.clear();
        }
        break;
      default:
        break;
    }
}

// --- RingNic -----------------------------------------------------------

void
RingNic::reset()
{
    status_ = kStReady;
    ringAddr_ = ringSize_ = 0;
    wrPtr_ = rdPtr_ = 0;
    txAddr_ = txLen_ = 0;
    rxEnabled_ = false;
    ien_ = false;
}

uint32_t
RingNic::ioRead(uint16_t port, DeviceBus &)
{
    switch (port) {
      case kStatus: {
        uint32_t st = status_;
        if (wrPtr_ != rdPtr_)
            st |= kStRxRdy;
        return st;
      }
      case kRingAddr: return ringAddr_;
      case kRingSize: return ringSize_;
      case kWrPtr: return wrPtr_;
      case kRdPtr: return rdPtr_;
      default: return 0;
    }
}

void
RingNic::deliverPending(DeviceBus &bus)
{
    while (rxEnabled_ && !rxQueue_.empty() && ringSize_ >= 8) {
        const auto &pkt = rxQueue_.front();
        uint32_t need = 4 + static_cast<uint32_t>(pkt.size());
        // Free space with wraparound; keep one byte gap to
        // disambiguate full from empty.
        uint32_t used = (wrPtr_ + ringSize_ - rdPtr_) % ringSize_;
        uint32_t space = ringSize_ - used - 1;
        if (need > space) {
            status_ |= kStRingOverflow;
            if (ien_)
                bus.raiseIrq(kIrqNic);
            return;
        }
        auto put = [&](uint8_t byte) {
            bus.writeMem(ringAddr_ + wrPtr_, byte);
            wrPtr_ = (wrPtr_ + 1) % ringSize_;
        };
        uint32_t len = static_cast<uint32_t>(pkt.size());
        put(len & 0xFF);
        put((len >> 8) & 0xFF);
        put((len >> 16) & 0xFF);
        put((len >> 24) & 0xFF);
        for (uint8_t byte : pkt)
            put(byte);
        rxQueue_.pop_front();
        if (ien_)
            bus.raiseIrq(kIrqNic);
    }
}

void
RingNic::ioWrite(uint16_t port, uint32_t value, DeviceBus &bus)
{
    switch (port) {
      case kRingAddr: ringAddr_ = value; break;
      case kRingSize: ringSize_ = value; break;
      case kRdPtr:
        rdPtr_ = ringSize_ ? value % ringSize_ : 0;
        deliverPending(bus);
        break;
      case kTxAddr0: txAddr_ = value; break;
      case kTxLen0: txLen_ = value; break;
      case kCmd:
        if (value & kCmdReset)
            reset();
        if (value & kCmdIen)
            ien_ = true;
        if (value & kCmdRxEnable) {
            rxEnabled_ = true;
            deliverPending(bus);
        }
        if (value & kCmdTx0) {
            if (txLen_ == 0 || txLen_ > 4096) {
                status_ |= kStRingOverflow; // reused as generic error
            } else {
                std::vector<uint8_t> pkt(txLen_);
                for (uint32_t i = 0; i < txLen_; ++i)
                    pkt[i] = bus.readMem(txAddr_ + i);
                completeTx(std::move(pkt));
                status_ |= kStTxDone;
                if (ien_)
                    bus.raiseIrq(kIrqNic);
                deliverPending(bus); // loopback may have queued RX
            }
        }
        break;
      default:
        break;
    }
}

void
RingNic::tick(uint64_t, DeviceBus &bus)
{
    deliverPending(bus);
}

} // namespace s2e::vm
