/**
 * @file
 * Guest NIC drivers (gisa assembly), one per virtual NIC model.
 *
 * These are the reproduction's stand-ins for the paper's four
 * closed-source Windows network drivers (Table 5): each implements a
 * different hardware protocol against its device. The DMA and PIO
 * drivers carry seeded bugs mirroring DDT's findings (§6.1.1) —
 * memory leaks, a copy-loop overflow, a null dereference, a double
 * free, a use-after-free and an ISR/mainline data race. Which bugs
 * are reachable depends on the consistency model: two need only
 * symbolic hardware (SC-SE); the rest need LC-style interface
 * annotations (symbolic registry config / alloc-failure injection).
 *
 * Common driver ABI (call/ret):
 *   drv_init()                 -> r1 = 0 ok, nonzero fail
 *   drv_send(r1 ptr, r2 len)   -> r1 = 0 ok
 *   drv_recv(r1 buf, r2 bufsz) -> r1 = received length (0 if none)
 *   drv_ioctl(r1 code, r2 arg) -> r1 = result
 *   drv_unload()
 *   drv_isr                    (installed into the IVT by drv_init)
 */

#ifndef S2E_GUEST_DRIVERS_HH
#define S2E_GUEST_DRIVERS_HH

#include <string>
#include <vector>

namespace s2e::guest {

/** Identifies one of the four drivers / NIC models. */
enum class DriverKind { Dma, Pio, Mmio, Ring };

const char *driverName(DriverKind kind);

/** The driver's assembly source (placed at kDriverCode). */
std::string driverSource(DriverKind kind);

/** Device factory name matching the driver ("dmanic", "pionic"...). */
const char *driverDeviceName(DriverKind kind);

/** Symbolic-hardware port range for the driver's device (lo, hi
 *  inclusive); Mmio uses an MMIO range instead (see driverMmioRange). */
std::pair<uint16_t, uint16_t> driverPortRange(DriverKind kind);
std::pair<uint32_t, uint32_t> driverMmioRange(DriverKind kind);

/** All four kinds, for sweep experiments. */
std::vector<DriverKind> allDriverKinds();

/**
 * The guest-side exerciser: calls the driver entry points in sequence
 * (init, ioctl, send, recv, unload) with heap buffers, mirroring the
 * paper's per-entry-point exploration script (§6.3).
 */
std::string driverHarnessSource();

} // namespace s2e::guest

#endif // S2E_GUEST_DRIVERS_HH
