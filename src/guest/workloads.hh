/**
 * @file
 * Application workloads (gisa assembly) reproducing the paper's
 * evaluation subjects:
 *
 *  - urlParserSource(): an Apache-style URL parser whose cost is
 *    linear in the number of '/' characters (10 extra instructions
 *    per '/'), with percent-decoding and query parsing — the §6.1.3
 *    PROFS subject;
 *  - pingSource(): a ping clone that transmits an echo request via
 *    the DMA NIC (loopback) and parses the reply's IP options. The
 *    unpatched variant contains the real ping bug: a record-route
 *    option with length < 4 loops forever because the parser
 *    `continue`s without advancing;
 *  - luaSource(): a lexer + recursive-descent parser + stack-machine
 *    interpreter for a tiny expression/statement language — the
 *    Table 6 / Figs 7-9 subject whose parser is deliberately hostile
 *    to symbolic execution;
 *  - licenseCheckSource(): the intro's license-key validation demo
 *    with a deep-path assertion failure.
 *
 * All expect kernelSource() to be concatenated first; pingSource()
 * additionally needs driverSource(DriverKind::Dma).
 */

#ifndef S2E_GUEST_WORKLOADS_HH
#define S2E_GUEST_WORKLOADS_HH

#include <string>

namespace s2e::guest {

/** Address of the URL input buffer (kAppData). */
constexpr uint32_t kUrlBuffer = 0x40000;
/** Maximum URL length the parser accepts. */
constexpr uint32_t kUrlMaxLen = 40;

std::string urlParserSource();

/** Ping reply buffer address (for symbolification). */
constexpr uint32_t kPingReplyBuffer = 0x40100;

std::string pingSource(bool patched);

/** Lua program text buffer / compiled bytecode area. */
constexpr uint32_t kLuaInput = 0x40200;
constexpr uint32_t kLuaBytecode = 0x40400;
constexpr uint32_t kLuaMaxBytecode = 128; ///< bytes (2-byte instrs)
/** Bytecode opcode values (op byte, arg byte). */
constexpr uint32_t kLuaOpHalt = 0;
constexpr uint32_t kLuaOpPush = 1;  ///< push literal arg
constexpr uint32_t kLuaOpLoad = 2;  ///< push variable arg (0..25)
constexpr uint32_t kLuaOpStore = 3; ///< pop into variable arg
constexpr uint32_t kLuaOpAdd = 4;
constexpr uint32_t kLuaOpSub = 5;
constexpr uint32_t kLuaOpMul = 6;
constexpr uint32_t kLuaOpDiv = 7;
constexpr uint32_t kLuaOpPrint = 8;
constexpr uint32_t kLuaOpMax = 8;
/** Label the LC/RC-OC annotation hooks onto (start of interpreter). */
std::string luaSource();

/** License key string address (read via the config store). */
constexpr uint32_t kLicenseKeyLen = 8;

std::string licenseCheckSource();

} // namespace s2e::guest

#endif // S2E_GUEST_WORKLOADS_HH
