#include "guest/workloads.hh"

namespace s2e::guest {

std::string
urlParserSource()
{
    return R"(
        .equ CONSOLE, 0x10
        .equ URLBUF, 0x40000

        .org 0x30000
        .entry url_main
url_main:
        movi sp, 0x7F000
        movi r1, URLBUF
        call parse_url
        s2e_out r1
        hlt

; parse_url(r1 buf) -> r1 = '/' segment count, 0xFFFFFFFF on bad URL
parse_url:
        mov r8, r1
        ; scheme must be "http://"
        ldb r4, [r8+0]
        cmpi r4, 'h'
        jne url_bad
        ldb r4, [r8+1]
        cmpi r4, 't'
        jne url_bad
        ldb r4, [r8+2]
        cmpi r4, 't'
        jne url_bad
        ldb r4, [r8+3]
        cmpi r4, 'p'
        jne url_bad
        ldb r4, [r8+4]
        cmpi r4, ':'
        jne url_bad
        ldb r4, [r8+5]
        cmpi r4, '/'
        jne url_bad
        ldb r4, [r8+6]
        cmpi r4, '/'
        jne url_bad
        addi r8, 7
        movi r9, 0               ; segment count
        movi r10, 0              ; path hash
        movi r11, 0              ; length guard
url_loop:
        ldb r4, [r8]
        cmpi r4, 0
        jeq url_done
        cmpi r4, '?'
        jeq url_query
        ; hash = hash*31 + c
        mov r5, r10
        shli r10, 5
        sub r10, r5
        add r10, r4
        cmpi r4, '/'
        jne url_notslash
        addi r9, 1
        call seg_work            ; 10 extra instructions per '/'
url_notslash:
        cmpi r4, '%'
        jne url_next
        ; percent-decoding consumes two more characters
        addi r8, 1
        ldb r5, [r8]
        cmpi r5, 0
        jeq url_bad
        addi r8, 1
        ldb r5, [r8]
        cmpi r5, 0
        jeq url_bad
url_next:
        addi r8, 1
        addi r11, 1
        cmpi r11, 40             ; kUrlMaxLen
        jb url_loop
        jmp url_done
url_query:
        addi r8, 1
url_qloop:
        ldb r4, [r8]
        cmpi r4, 0
        jeq url_done
        mov r5, r10
        shli r10, 5
        sub r10, r5
        add r10, r4
        addi r8, 1
        addi r11, 1
        cmpi r11, 40
        jb url_qloop
url_done:
        mov r1, r9
        ret
url_bad:
        movi r1, 0xFFFFFFFF
        ret

; Together with the counter bump at the call site, each '/' costs
; exactly 10 extra instructions (addi + call + push + movi + 4x addi
; + pop + ret) -- the signature PROFS measures in §6.1.3.
seg_work:
        push r4
        movi r4, 0
        addi r4, 1
        addi r4, 1
        addi r4, 1
        addi r4, 1
        pop r4
        ret
)";
}

std::string
pingSource(bool patched)
{
    std::string rr_bug = patched ? R"(
        ; patched: skip the malformed option and keep parsing
        addi r12, 1
        jmp ping_optloop
)"
                                 : R"(
        ; BUG (CVE-style): no room for addresses -> 'continue' without
        ; advancing the option cursor: infinite loop on this reply
        jmp ping_optloop
)";

    return R"(
        .equ CONSOLE, 0x10
        .equ REQBUF, 0x40080
        .equ REPLYBUF, 0x40100

        .org 0x30000
        .entry ping_main
ping_main:
        movi sp, 0x7F000
        sti
        call drv_init
        cmpi r1, 0
        jne ping_fail
        ; build the echo request: type 8, code 0, id, seq, payload
        movi r8, REQBUF
        movi r4, 8
        stb [r8+0], r4
        movi r4, 0
        stb [r8+1], r4
        movi r4, 0x77
        stb [r8+4], r4
        movi r4, 0x01
        stb [r8+6], r4
        movi r10, 8              ; payload fill
ping_fill:
        mov r5, r8
        add r5, r10
        stb [r5], r10
        addi r10, 1
        cmpi r10, 16
        jb ping_fill
        ; checksum over the 16-byte packet
        mov r1, r8
        movi r2, 16
        call checksum16
        stb [r8+2], r1
        shri r1, 8
        stb [r8+3], r1
        ; transmit (the NIC is in loopback: the echo comes back)
        movi r1, REQBUF
        movi r2, 16
        call drv_send
        cmpi r1, 0
        jne ping_fail
        ; receive the reply
        movi r9, REPLYBUF
        mov r1, r9
        movi r2, 64
        call drv_recv
        cmpi r1, 0
        jeq ping_fail
        ; the network may answer anything: symbolify when configured
        movi r0, 6
        movi r1, 8               ; CFG_SYMREPLY
        int 0x30
        cmpi r1, 0
        jeq ping_parse
        mov r1, r9
        movi r2, 12
        s2e_symmem r1, r2
ping_parse:
        ; reply "IP header": byte 0 is IHL in words (5..15); options
        ; occupy bytes 8 .. 8+(ihl-5)*4
        ldb r4, [r9]
        cmpi r4, 5
        jb ping_badhdr
        cmpi r4, 15
        ja ping_badhdr
        subi r4, 5
        shli r4, 2
        mov r11, r4              ; total option bytes
        movi r12, 0              ; option cursor
ping_optloop:
        cmp r12, r11
        jae ping_ok
        mov r5, r9
        addi r5, 8
        add r5, r12
        ldb r6, [r5]             ; option type
        cmpi r6, 0               ; end of options
        jeq ping_ok
        cmpi r6, 1               ; NOP: single byte
        jne ping_not_nop
        addi r12, 1
        jmp ping_optloop
ping_not_nop:
        ldb r7, [r5+1]           ; option length
        cmpi r6, 7               ; RECORD ROUTE
        jne ping_otheropt
        cmpi r7, 4
        jae ping_rr_ok
)" + rr_bug + R"(
ping_rr_ok:
        ; walk the recorded route: per-byte processing makes the
        ; reply's option length dominate the execution-time envelope
        ; (real record-route options carry at most 9 addresses; the
        ; cap also keeps the walk's fork tree bounded)
        mov r4, r7
        subi r4, 2               ; payload bytes in this option
        andi r4, 15
ping_rr_walk:
        cmpi r4, 0
        jeq ping_rr_next
        movi r5, 20              ; per-hop processing (concrete loop,
ping_rr_hop:                     ;  so it adds cost but never forks)
        addi r13, 7
        muli r13, 3
        subi r5, 1
        cmpi r5, 0
        jne ping_rr_hop
        subi r4, 1
        jmp ping_rr_walk
ping_rr_next:
        add r12, r7
        jmp ping_optloop
ping_otheropt:
        cmpi r7, 2
        jb ping_badhdr           ; malformed option
        add r12, r7
        jmp ping_optloop
ping_ok:
        movi r4, 'Y'
        out CONSOLE, r4
        hlt
ping_badhdr:
        movi r4, 'E'
        out CONSOLE, r4
        hlt
ping_fail:
        movi r4, 'F'
        out CONSOLE, r4
        hlt
)";
}

std::string
luaSource()
{
    return R"(
        .equ CONSOLE, 0x10
        .equ L_INPUT, 0x40200
        .equ L_TOKBUF, 0x40300
        .equ L_BC, 0x40400
        .equ L_VARS, 0x40500
        .equ L_VSTACK, 0x40600
        .equ L_CUR, 0x40700
        .equ L_EMIT, 0x40704

        .org 0x30000
        .entry lua_main
lua_main:
        movi sp, 0x7F000
        movi r1, L_INPUT
        call lex
        cmpi r1, 0
        jne lua_lexerr
        movi r4, L_CUR
        movi r5, 0
        stw [r4], r5
        movi r4, L_EMIT
        stw [r4], r5
        call parse
        cmpi r1, 0
        jne lua_parseerr
        movi r1, 0               ; emit HALT
        movi r2, 0
        call emit
        call interp
        cmpi r1, 0
        jne lua_runerr
        movi r4, 'K'
        out CONSOLE, r4
        hlt
lua_lexerr:
        movi r4, 'L'
        out CONSOLE, r4
        hlt
lua_parseerr:
        movi r4, 'P'
        out CONSOLE, r4
        hlt
lua_runerr:
        movi r4, 'R'
        out CONSOLE, r4
        hlt

; ======================= lexer =========================================
; lex(r1 input) -> r1 = 0 ok / 1 error; tokens to L_TOKBUF as
; [kind u8][value u8]: 0 EOF, 1 NUM, 2 VAR, 3 '+', 4 '-', 5 '*',
; 6 '/', 7 '(', 8 ')', 9 '=', 10 ';', 11 '!'
lex:
        mov r8, r1
        movi r9, L_TOKBUF
        movi r10, 0              ; token count guard
lex_loop:
        cmpi r10, 62
        ja lex_err               ; too many tokens
        ldb r4, [r8]
        cmpi r4, 0
        jeq lex_eof
        cmpi r4, ' '
        jne lex_nonspace
        addi r8, 1
        jmp lex_loop
lex_nonspace:
        cmpi r4, '0'
        jb lex_notdigit
        cmpi r4, '9'
        ja lex_notdigit
        movi r5, 0               ; parse the number
lex_num:
        ldb r4, [r8]
        cmpi r4, '0'
        jb lex_numdone
        cmpi r4, '9'
        ja lex_numdone
        muli r5, 10
        add r5, r4
        subi r5, '0'
        andi r5, 0xFF
        addi r8, 1
        jmp lex_num
lex_numdone:
        movi r4, 1
        stb [r9], r4
        stb [r9+1], r5
        addi r9, 2
        addi r10, 1
        jmp lex_loop
lex_notdigit:
        cmpi r4, 'a'
        jb lex_notvar
        cmpi r4, 'z'
        ja lex_notvar
        movi r5, 2
        stb [r9], r5
        subi r4, 'a'
        stb [r9+1], r4
        addi r9, 2
        addi r10, 1
        addi r8, 1
        jmp lex_loop
lex_notvar:
        movi r5, 0
        cmpi r4, '+'
        jne lex_n1
        movi r5, 3
lex_n1: cmpi r4, '-'
        jne lex_n2
        movi r5, 4
lex_n2: cmpi r4, '*'
        jne lex_n3
        movi r5, 5
lex_n3: cmpi r4, '/'
        jne lex_n4
        movi r5, 6
lex_n4: cmpi r4, '('
        jne lex_n5
        movi r5, 7
lex_n5: cmpi r4, ')'
        jne lex_n6
        movi r5, 8
lex_n6: cmpi r4, '='
        jne lex_n7
        movi r5, 9
lex_n7: cmpi r4, ';'
        jne lex_n8
        movi r5, 10
lex_n8: cmpi r4, '!'
        jne lex_n9
        movi r5, 11
lex_n9: cmpi r5, 0
        jeq lex_err              ; unknown character
        stb [r9], r5
        movi r5, 0
        stb [r9+1], r5
        addi r9, 2
        addi r10, 1
        addi r8, 1
        jmp lex_loop
lex_eof:
        movi r4, 0
        stb [r9], r4
        stb [r9+1], r4
        movi r1, 0
        ret
lex_err:
        movi r1, 1
        ret

; ======================= parser ========================================
; tok_peek -> r1 = kind, r2 = value (does not advance)
tok_peek:
        movi r4, L_CUR
        ldw r5, [r4]
        movi r6, L_TOKBUF
        add r6, r5
        add r6, r5
        ldb r1, [r6]
        ldb r2, [r6+1]
        ret
tok_next:
        movi r4, L_CUR
        ldw r5, [r4]
        addi r5, 1
        stw [r4], r5
        ret
; emit(r1 op, r2 arg)
emit:
        movi r4, L_EMIT
        ldw r5, [r4]
        cmpi r5, 126
        ja emit_full
        movi r6, L_BC
        add r6, r5
        stb [r6], r1
        stb [r6+1], r2
        addi r5, 2
        stw [r4], r5
emit_full:
        ret

; parse -> r1 = 0 ok / 1 error. Grammar:
;   program := { stmt ';' } EOF
;   stmt    := VAR '=' expr | '!' expr
parse:
parse_loop:
        call tok_peek
        cmpi r1, 0               ; EOF
        jeq parse_ok
        cmpi r1, 2               ; VAR '=' expr
        jeq parse_assign
        cmpi r1, 11              ; '!' expr
        jeq parse_print
        jmp parse_err
parse_assign:
        push r2                  ; variable index
        call tok_next
        call tok_peek
        cmpi r1, 9               ; '='
        jne parse_err_pop
        call tok_next
        call p_expr
        cmpi r1, 0
        jne parse_err_pop
        pop r2
        movi r1, 3               ; STORE
        call emit
        jmp parse_semi
parse_print:
        call tok_next
        call p_expr
        cmpi r1, 0
        jne parse_err
        movi r1, 8               ; PRINT
        movi r2, 0
        call emit
parse_semi:
        call tok_peek
        cmpi r1, 10              ; ';'
        jne parse_err
        call tok_next
        jmp parse_loop
parse_err_pop:
        pop r2
parse_err:
        movi r1, 1
        ret
parse_ok:
        movi r1, 0
        ret

; expr := term { (+|-) term }
p_expr:
        call p_term
        cmpi r1, 0
        jne p_expr_ret
p_expr_loop:
        call tok_peek
        cmpi r1, 3               ; '+'
        jeq p_expr_add
        cmpi r1, 4               ; '-'
        jeq p_expr_sub
        movi r1, 0
        ret
p_expr_add:
        call tok_next
        call p_term
        cmpi r1, 0
        jne p_expr_ret
        movi r1, 4               ; ADD
        movi r2, 0
        call emit
        jmp p_expr_loop
p_expr_sub:
        call tok_next
        call p_term
        cmpi r1, 0
        jne p_expr_ret
        movi r1, 5               ; SUB
        movi r2, 0
        call emit
        jmp p_expr_loop
p_expr_ret:
        ret

; term := factor { (*|/) factor }
p_term:
        call p_factor
        cmpi r1, 0
        jne p_term_ret
p_term_loop:
        call tok_peek
        cmpi r1, 5               ; '*'
        jeq p_term_mul
        cmpi r1, 6               ; '/'
        jeq p_term_div
        movi r1, 0
        ret
p_term_mul:
        call tok_next
        call p_factor
        cmpi r1, 0
        jne p_term_ret
        movi r1, 6               ; MUL
        movi r2, 0
        call emit
        jmp p_term_loop
p_term_div:
        call tok_next
        call p_factor
        cmpi r1, 0
        jne p_term_ret
        movi r1, 7               ; DIV
        movi r2, 0
        call emit
        jmp p_term_loop
p_term_ret:
        ret

; factor := NUM | VAR | '(' expr ')'
p_factor:
        call tok_peek
        cmpi r1, 1               ; NUM
        jne p_factor_notnum
        call tok_next
        movi r1, 1               ; PUSH
        call emit
        movi r1, 0
        ret
p_factor_notnum:
        cmpi r1, 2               ; VAR
        jne p_factor_notvar
        call tok_next
        movi r1, 2               ; LOAD
        call emit
        movi r1, 0
        ret
p_factor_notvar:
        cmpi r1, 7               ; '('
        jne p_factor_err
        call tok_next
        call p_expr
        cmpi r1, 0
        jne p_factor_ret
        call tok_peek
        cmpi r1, 8               ; ')'
        jne p_factor_err
        call tok_next
        movi r1, 0
        ret
p_factor_err:
        movi r1, 1
p_factor_ret:
        ret

; ======================= interpreter ===================================
; interp -> r1 = 0 ok / 1 runtime error. Stack machine over L_BC.
interp:
interp_start:                    ; annotation hook for LC / RC-OC
        movi r8, L_BC            ; bytecode pc
        movi r9, L_VSTACK        ; value stack pointer (grows up)
interp_loop:
        movi r4, L_BC+128
        cmp r8, r4
        jae interp_err           ; ran off the bytecode
        ldb r4, [r8]             ; opcode
        ldb r5, [r8+1]           ; argument
        addi r8, 2
        cmpi r4, 0
        jeq interp_halt
        cmpi r4, 1
        jeq op_push
        cmpi r4, 2
        jeq op_load
        cmpi r4, 3
        jeq op_store
        cmpi r4, 4
        jeq op_add
        cmpi r4, 5
        jeq op_sub
        cmpi r4, 6
        jeq op_mul
        cmpi r4, 7
        jeq op_div
        cmpi r4, 8
        jeq op_print
        jmp interp_err           ; invalid opcode
op_push:
        stw [r9], r5
        addi r9, 4
        jmp interp_loop
op_load:
        cmpi r5, 26
        jae interp_err
        shli r5, 2
        movi r6, L_VARS
        add r6, r5
        ldw r6, [r6]
        stw [r9], r6
        addi r9, 4
        jmp interp_loop
op_store:
        cmpi r5, 26
        jae interp_err
        movi r6, L_VSTACK
        cmp r9, r6
        jbe interp_err           ; stack underflow
        subi r9, 4
        ldw r6, [r9]
        shli r5, 2
        movi r7, L_VARS
        add r7, r5
        stw [r7], r6
        jmp interp_loop
op_add:
        call vpop2
        cmpi r1, 1
        jeq interp_err
        add r6, r7
        stw [r9], r6
        addi r9, 4
        jmp interp_loop
op_sub:
        call vpop2
        cmpi r1, 1
        jeq interp_err
        sub r6, r7
        stw [r9], r6
        addi r9, 4
        jmp interp_loop
op_mul:
        call vpop2
        cmpi r1, 1
        jeq interp_err
        mul r6, r7
        stw [r9], r6
        addi r9, 4
        jmp interp_loop
op_div:
        call vpop2
        cmpi r1, 1
        jeq interp_err
        cmpi r7, 0
        jeq interp_err           ; division by zero
        udiv r6, r7
        stw [r9], r6
        addi r9, 4
        jmp interp_loop
op_print:
        movi r6, L_VSTACK
        cmp r9, r6
        jbe interp_err
        subi r9, 4
        ldw r1, [r9]
        call print_u32
        jmp interp_loop
interp_halt:
        movi r1, 0
        ret
interp_err:
        movi r1, 1
        ret

; vpop2: pops rhs into r7 and lhs into r6; r1 = 1 on underflow
vpop2:
        movi r6, L_VSTACK+4
        cmp r9, r6
        jbe vpop2_under
        subi r9, 4
        ldw r7, [r9]
        subi r9, 4
        ldw r6, [r9]
        movi r1, 0
        ret
vpop2_under:
        movi r1, 1
        ret

; print_u32(r1): decimal + newline on the console
print_u32:
        movi r6, 0               ; digit count
pd_loop:
        movi r5, 10
        mov r4, r1
        urem r4, r5
        addi r4, '0'
        push r4
        addi r6, 1
        udiv r1, r5
        cmpi r1, 0
        jne pd_loop
pd_emit:
        pop r4
        out CONSOLE, r4
        subi r6, 1
        cmpi r6, 0
        jne pd_emit
        movi r4, '\n'
        out CONSOLE, r4
        ret
)";
}

std::string
licenseCheckSource()
{
    return R"(
        .equ CONSOLE, 0x10

        .org 0x30000
        .entry lic_main
lic_main:
        movi sp, 0x7F000
        ; the license key pointer lives in the registry
        movi r0, 6
        movi r1, 4               ; CFG_LICENSEPTR
        int 0x30
        cmpi r1, 0
        jeq lic_nokey
        mov r8, r1
        ; length must be exactly 8
        mov r1, r8
        call strlen
        cmpi r1, 8
        jne lic_bad
        ; prefix "S2"
        ldb r4, [r8]
        cmpi r4, 'S'
        jne lic_bad
        ldb r4, [r8+1]
        cmpi r4, '2'
        jne lic_bad
        ; characters 2..6 are digits; accumulate their sum
        movi r9, 0
        movi r10, 2
lic_digits:
        mov r5, r8
        add r5, r10
        ldb r4, [r5]
        cmpi r4, '0'
        jb lic_bad
        cmpi r4, '9'
        ja lic_bad
        subi r4, '0'
        add r9, r4
        addi r10, 1
        cmpi r10, 7
        jb lic_digits
        ; checksum: digit sum mod 7 must be 3
        movi r5, 7
        urem r9, r5
        cmpi r9, 3
        jne lic_bad
        ; legacy 'X' suffix path has a latent assertion bug
        ldb r4, [r8+7]
        cmpi r4, 'X'
        jne lic_ok
        ldb r4, [r8+2]
        cmpi r4, '9'
        jne lic_ok
        movi r4, 0
        s2e_assert r4            ; fails for S29ddddX-style valid keys
lic_ok:
        movi r4, 'V'
        out CONSOLE, r4
        hlt
lic_bad:
        movi r4, 'B'
        out CONSOLE, r4
        hlt
lic_nokey:
        movi r4, 'N'
        out CONSOLE, r4
        hlt
)";
}

} // namespace s2e::guest
