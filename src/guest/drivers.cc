#include "guest/drivers.hh"

#include "guest/layout.hh"
#include "support/logging.hh"

namespace s2e::guest {

const char *
driverName(DriverKind kind)
{
    switch (kind) {
      case DriverKind::Dma: return "pcnet";
      case DriverKind::Pio: return "rtl8029";
      case DriverKind::Mmio: return "91c111";
      case DriverKind::Ring: return "rtl8139";
    }
    return "<bad>";
}

const char *
driverDeviceName(DriverKind kind)
{
    switch (kind) {
      case DriverKind::Dma: return "dmanic";
      case DriverKind::Pio: return "pionic";
      case DriverKind::Mmio: return "mmionic";
      case DriverKind::Ring: return "ringnic";
    }
    return "<bad>";
}

std::pair<uint16_t, uint16_t>
driverPortRange(DriverKind kind)
{
    switch (kind) {
      case DriverKind::Dma: return {0x50, 0x57};
      case DriverKind::Pio: return {0x40, 0x47};
      case DriverKind::Ring: return {0x60, 0x67};
      case DriverKind::Mmio: return {0, 0}; // MMIO device
    }
    return {0, 0};
}

std::pair<uint32_t, uint32_t>
driverMmioRange(DriverKind kind)
{
    if (kind == DriverKind::Mmio)
        return {0xF0001000u, 0xF0001010u};
    return {0, 0};
}

std::vector<DriverKind>
allDriverKinds()
{
    return {DriverKind::Dma, DriverKind::Pio, DriverKind::Mmio,
            DriverKind::Ring};
}

namespace {

/** Globals shared by all driver variants (placed in kDriverData). */
const char *kDriverEqus = R"(
        .equ G_RXBUF,   0x28000   ; staging buffer (heap pointer)
        .equ G_STATS,   0x28004   ; event counter (race target)
        .equ G_TXCOUNT, 0x28008
        .equ G_MTU,     0x2800C
        .equ G_INITED,  0x28010
        .equ G_PROMISC, 0x28014
        .equ G_THRESH,  0x28020   ; 8-word threshold table (ioctl)
        .equ IVT_NIC,   0x104     ; IRQ 1 vector slot
)";

/**
 * DMA ("pcnet") driver. Seeded bugs:
 *   B1 leak        init bails on MAC-override config without freeing
 *   B2 overflow    recv copy loop bounded by device-claimed length
 *   B3 null-deref  card-type-2 path uses staging without alloc check
 *   B4 wild-write  ioctl(3) indexes the threshold table unchecked
 *   B5 double-free init MTU-fail path frees staging but keeps pointer
 *   B8 data-race   promiscuous send path bumps G_STATS without cli
 */
std::string
dmaDriverSource()
{
    return std::string(kDriverEqus) + R"(
        .equ NIC_CMD, 0x50
        .equ NIC_STATUS, 0x51
        .equ NIC_TXADDR, 0x52
        .equ NIC_TXLEN, 0x53
        .equ NIC_RXADDR, 0x54
        .equ NIC_RXBUFSZ, 0x55
        .equ NIC_RXLEN, 0x56
        .equ NIC_CARDTYPE, 0x57

        .org 0x20000
drv_init:
        ; probe the card id
        in r4, NIC_CARDTYPE
        cmpi r4, 0x2621
        jne dma_init_noprobe
        ; CardType registry setting selects the init flavor
        movi r0, 6
        movi r1, 1               ; CFG_CARDTYPE
        int 0x30
        mov r8, r1
        cmpi r8, 2
        ja dma_init_badtype
        ; allocate the 256-byte rx staging buffer
        movi r0, 4
        movi r1, 256
        int 0x30
        movi r4, G_RXBUF
        stw [r4], r1
        cmpi r8, 0
        jeq dma_init_type0
        cmpi r8, 1
        jeq dma_init_type1
        jmp dma_init_type2
dma_init_type0:
        movi r4, 1               ; reset
        out NIC_CMD, r4
        jmp dma_init_common
dma_init_type1:
        movi r4, 1
        out NIC_CMD, r4
        ; MAC override unsupported on this card flavor
        movi r0, 6
        movi r1, 2               ; CFG_MACOVERRIDE
        int 0x30
        cmpi r1, 0
        jeq dma_init_common
        ; BUG B1: error return forgets the staging buffer (leak)
        movi r4, G_RXBUF
        movi r5, 0
        stw [r4], r5
        movi r1, 1
        ret
dma_init_type2:
        ; BUG B3: uses the staging buffer with no allocation check
        movi r4, G_RXBUF
        ldw r5, [r4]
        movi r6, 0xAB
        stb [r5], r6             ; null write when alloc failed
        movi r4, 1
        out NIC_CMD, r4
        jmp dma_init_common
dma_init_common:
        movi r4, G_RXBUF
        ldw r5, [r4]
        cmpi r5, 0
        jeq dma_init_allocfail
        ; MTU sanity from the registry
        movi r0, 6
        movi r1, 5               ; CFG_MTU
        int 0x30
        cmpi r1, 0
        jeq dma_init_mtu_ok
        cmpi r1, 4096
        ja dma_init_mtu_bad
        movi r4, G_MTU
        stw [r4], r1
dma_init_mtu_ok:
        ; cache promiscuous mode
        movi r0, 6
        movi r1, 3               ; CFG_PROMISCUOUS
        int 0x30
        movi r4, G_PROMISC
        stw [r4], r1
        ; install the ISR and enable card interrupts
        movi r4, drv_isr
        movi r5, IVT_NIC
        stw [r5], r4
        movi r4, 8               ; IEN
        out NIC_CMD, r4
        movi r4, G_INITED
        movi r5, 1
        stw [r4], r5
        movi r1, 0
        ret
dma_init_mtu_bad:
        ; BUG B5: frees the staging buffer but keeps the stale pointer
        movi r0, 5
        movi r4, G_RXBUF
        ldw r1, [r4]
        int 0x30
        movi r1, 1
        ret
dma_init_allocfail:
        movi r1, 1
        ret
dma_init_noprobe:
        movi r1, 1
        ret
dma_init_badtype:
        movi r1, 1
        ret

drv_send:                        ; r1 ptr, r2 len -> r1 status
        movi r4, G_INITED
        ldw r4, [r4]
        cmpi r4, 0
        jeq dma_send_notinit
        movi r4, G_MTU
        ldw r4, [r4]
        cmpi r4, 0
        jne dma_send_havemtu
        movi r4, 1500
dma_send_havemtu:
        cmp r2, r4
        ja dma_send_toolong
        cmpi r2, 0
        jeq dma_send_toolong
        out NIC_TXADDR, r1
        out NIC_TXLEN, r2
        movi r4, 2               ; TXSTART
        out NIC_CMD, r4
        ; bounded TXDONE poll
        movi r5, 4
dma_send_poll:
        in r4, NIC_STATUS
        testi r4, 2
        jne dma_send_sent
        subi r5, 1
        cmpi r5, 0
        jne dma_send_poll
        movi r1, 2               ; timeout
        ret
dma_send_sent:
        movi r4, G_TXCOUNT
        ldw r5, [r4]
        addi r5, 1
        stw [r4], r5
        movi r4, G_PROMISC
        ldw r4, [r4]
        cmpi r4, 0
        jeq dma_send_protected
        ; BUG B8: unprotected read-modify-write racing with drv_isr
        movi r4, G_STATS
        ldw r5, [r4]
        addi r5, 1
        stw [r4], r5
        jmp dma_send_ok
dma_send_protected:
        cli
        movi r4, G_STATS
        ldw r5, [r4]
        addi r5, 1
        stw [r4], r5
        sti
dma_send_ok:
        movi r1, 0
        ret
dma_send_notinit:
        movi r1, 1
        ret
dma_send_toolong:
        movi r1, 3
        ret

drv_recv:                        ; r1 buf, r2 bufsz -> r1 len
        mov r9, r1               ; user buffer
        mov r10, r2              ; user buffer size (ignored by B2!)
        in r4, NIC_STATUS
        testi r4, 4              ; RXRDY
        jeq dma_recv_none
        in r11, NIC_RXLEN        ; device-claimed frame length
        ; fetch the frame into the staging buffer (correctly bounded)
        movi r4, G_RXBUF
        ldw r12, [r4]
        out NIC_RXADDR, r12
        movi r4, 256
        out NIC_RXBUFSZ, r4
        movi r4, 4               ; RXFETCH
        out NIC_CMD, r4
        ; BUG B2: copy loop bounded by the *claimed* length, not the
        ; user buffer size (r10). Symbolic hardware exposes this.
        movi r5, 0
dma_recv_copy:
        cmp r5, r11
        jae dma_recv_done
        mov r6, r12
        add r6, r5
        ldb r7, [r6]
        mov r6, r9
        add r6, r5
        stb [r6], r7
        addi r5, 1
        cmpi r5, 32              ; hard stop so paths stay bounded
        jb dma_recv_copy
dma_recv_done:
        mov r1, r5
        ret
dma_recv_none:
        movi r1, 0
        ret

drv_ioctl:                       ; r1 code, r2 arg -> r1
        cmpi r1, 1
        jeq dma_ioctl_stats
        cmpi r1, 2
        jeq dma_ioctl_mtu
        cmpi r1, 3
        jeq dma_ioctl_thresh
        movi r1, 0xFFFFFFFF      ; unknown code
        ret
dma_ioctl_stats:
        movi r4, G_STATS
        ldw r1, [r4]
        ret
dma_ioctl_mtu:
        cmpi r2, 4096
        ja dma_ioctl_bad
        movi r4, G_MTU
        stw [r4], r2
        movi r1, 0
        ret
dma_ioctl_thresh:
        ; BUG B4: index = arg >> 8, stored into the heap-allocated
        ; staging buffer without a bounds check (the paper's
        ; SetInformationHandler-style unvalidated-input bug)
        mov r4, r2
        shri r4, 8
        shli r4, 2
        movi r5, G_RXBUF
        ldw r5, [r5]
        add r5, r4
        stw [r5], r2
        movi r1, 0
        ret
dma_ioctl_bad:
        movi r1, 0xFFFFFFFF
        ret

drv_isr:
        push r4                  ; async entry: preserve scratch regs
        push r5
        movi r4, G_STATS         ; racy counter shared with drv_send
        ldw r5, [r4]
        addi r5, 1
        stw [r4], r5
        pop r5
        pop r4
        iret

drv_unload:
        movi r4, G_RXBUF
        ldw r1, [r4]
        cmpi r1, 0
        jeq dma_unload_done
        movi r0, 5               ; double free after the B5 path
        int 0x30
        movi r4, G_RXBUF
        movi r5, 0
        stw [r4], r5
dma_unload_done:
        movi r1, 0
        ret
)";
}

/**
 * PIO ("rtl8029") driver. Seeded bugs:
 *   B6 use-after-free  send logs from its scratch copy after freeing
 *                      it when the status register reports an error
 *   B7 leak            recv's zero-length path leaks its scratch
 */
std::string
pioDriverSource()
{
    return std::string(kDriverEqus) + R"(
        .equ PN_CMD, 0x40
        .equ PN_STATUS, 0x41
        .equ PN_DATA, 0x42
        .equ PN_TXLEN, 0x43
        .equ PN_RXLEN, 0x44
        .equ PN_MACIDX, 0x45
        .equ PN_MACVAL, 0x46
        .equ PN_CFG, 0x47

        .org 0x20000
drv_init:
        ; read out the 6-byte MAC; all-zero means no card
        movi r8, 0               ; accumulated OR of MAC bytes
        movi r5, 0
pio_init_macloop:
        out PN_MACIDX, r5
        in r4, PN_MACVAL
        or r8, r4
        addi r5, 1
        cmpi r5, 6
        jb pio_init_macloop
        cmpi r8, 0
        jeq pio_init_nocard
        ; reset + interrupt enable
        movi r4, 1
        out PN_CMD, r4
        movi r4, drv_isr
        movi r5, IVT_NIC
        stw [r5], r4
        movi r4, 8
        out PN_CMD, r4
        ; scratch buffer for tx copies
        movi r0, 4
        movi r1, 64
        int 0x30
        cmpi r1, 0
        jeq pio_init_nomem
        movi r4, G_RXBUF
        stw [r4], r1
        movi r4, G_INITED
        movi r5, 1
        stw [r4], r5
        movi r1, 0
        ret
pio_init_nocard:
        movi r1, 1
        ret
pio_init_nomem:
        movi r1, 2
        ret

drv_send:                        ; r1 ptr, r2 len -> r1
        movi r4, G_INITED
        ldw r4, [r4]
        cmpi r4, 0
        jeq pio_send_notinit
        cmpi r2, 0
        jeq pio_send_badlen
        cmpi r2, 64
        ja pio_send_badlen
        mov r9, r1
        mov r10, r2
        ; allocate a scratch copy (the card latches PIO data slowly)
        movi r0, 4
        movi r1, 64
        int 0x30
        cmpi r1, 0
        jeq pio_send_nomem
        mov r11, r1              ; scratch
        mov r2, r9
        mov r3, r10
        call memcpy
        ; push the bytes through the data port
        out PN_TXLEN, r10
        movi r5, 0
pio_send_push:
        mov r6, r11
        add r6, r5
        ldb r7, [r6]
        out PN_DATA, r7
        addi r5, 1
        cmp r5, r10
        jb pio_send_push
        movi r4, 2               ; TX
        out PN_CMD, r4
        ; free the scratch, then check how it went
        movi r0, 5
        mov r1, r11
        int 0x30
        in r4, PN_STATUS
        testi r4, 8              ; ERROR
        jeq pio_send_ok
        ; BUG B6: "log" the first payload byte from the freed scratch
        ldb r5, [r11]
        movi r4, G_STATS
        stw [r4], r5
        movi r1, 4
        ret
pio_send_ok:
        movi r4, G_TXCOUNT
        ldw r5, [r4]
        addi r5, 1
        stw [r4], r5
        movi r1, 0
        ret
pio_send_notinit:
        movi r1, 1
        ret
pio_send_badlen:
        movi r1, 2
        ret
pio_send_nomem:
        movi r1, 3
        ret

drv_recv:                        ; r1 buf, r2 bufsz -> r1 len
        mov r9, r1
        mov r10, r2
        in r4, PN_STATUS
        testi r4, 4              ; RXRDY
        jeq pio_recv_none
        ; scratch for header peeking
        movi r0, 4
        movi r1, 16
        int 0x30
        mov r11, r1
        in r12, PN_RXLEN
        cmpi r12, 0
        jne pio_recv_havelen
        ; BUG B7: a ready-but-empty frame "cannot happen" per spec;
        ; this early return leaks the scratch buffer
        movi r1, 0
        ret
pio_recv_havelen:
        ; clamp to the caller's buffer
        cmp r12, r10
        jbe pio_recv_clamped
        mov r12, r10
pio_recv_clamped:
        movi r5, 0
pio_recv_pull:
        cmp r5, r12
        jae pio_recv_ack
        in r7, PN_DATA
        mov r6, r9
        add r6, r5
        stb [r6], r7
        addi r5, 1
        jmp pio_recv_pull
pio_recv_ack:
        movi r4, 4               ; RXACK
        out PN_CMD, r4
        movi r0, 5               ; free the scratch on the good path
        mov r1, r11
        int 0x30
        mov r1, r12
        ret
pio_recv_none:
        movi r1, 0
        ret

drv_ioctl:                       ; r1 code, r2 arg -> r1
        cmpi r1, 1
        jeq pio_ioctl_stats
        cmpi r1, 2
        jeq pio_ioctl_cfg
        movi r1, 0xFFFFFFFF
        ret
pio_ioctl_stats:
        movi r4, G_TXCOUNT
        ldw r1, [r4]
        ret
pio_ioctl_cfg:
        out PN_CFG, r2
        movi r1, 0
        ret

drv_isr:
        push r4
        push r5
        movi r4, G_TXCOUNT       ; benign: ISR touches its own counter
        ldw r5, [r4]
        stw [r4], r5
        pop r5
        pop r4
        iret

drv_unload:
        movi r4, G_RXBUF
        ldw r1, [r4]
        cmpi r1, 0
        jeq pio_unload_done
        movi r0, 5
        int 0x30
        movi r4, G_RXBUF
        movi r5, 0
        stw [r4], r5
pio_unload_done:
        movi r1, 0
        ret
)";
}

/** Bank-switched MMIO ("91c111") driver — no seeded bugs; its bank
 *  juggling provides branchy coverage structure. */
std::string
mmioDriverSource()
{
    return std::string(kDriverEqus) + R"(
        .equ MN_BASE, 0xF0001000
        .equ MN_BANK, 0xE

        .org 0x20000
drv_init:
        movi r9, MN_BASE
        ; bank 1: MAC must be programmed
        movi r4, 1
        stw [r9+0xE], r4
        ldw r5, [r9+0]
        cmpi r5, 0
        jeq mmio_init_nocard
        ; bank 0: control per configuration
        movi r4, 0
        stw [r9+0xE], r4
        movi r0, 6
        movi r1, 3               ; CFG_PROMISCUOUS
        int 0x30
        cmpi r1, 0
        jeq mmio_init_plain
        movi r4, 7               ; txen | rxen | ien
        jmp mmio_init_ctrl
mmio_init_plain:
        movi r4, 5               ; txen | ien
mmio_init_ctrl:
        stw [r9+0], r4
        movi r4, drv_isr
        movi r5, IVT_NIC
        stw [r5], r4
        movi r4, G_INITED
        movi r5, 1
        stw [r4], r5
        movi r1, 0
        ret
mmio_init_nocard:
        movi r1, 1
        ret

drv_send:                        ; r1 ptr, r2 len -> r1
        movi r4, G_INITED
        ldw r4, [r4]
        cmpi r4, 0
        jeq mmio_send_notinit
        cmpi r2, 0
        jeq mmio_send_badlen
        cmpi r2, 256
        ja mmio_send_badlen
        movi r9, MN_BASE
        ; bank 2: program length, stream the payload into the FIFO
        movi r4, 2
        stw [r9+0xE], r4
        stw [r9+4], r2           ; TxLen
        movi r5, 0
mmio_send_fifo:
        cmp r5, r2
        jae mmio_send_go
        mov r6, r1
        add r6, r5
        ldb r7, [r6]
        stw [r9+0], r7           ; FIFO window
        addi r5, 1
        jmp mmio_send_fifo
mmio_send_go:
        movi r4, 0
        stw [r9+0xE], r4
        movi r4, 2               ; TX command
        stw [r9+8], r4
        movi r1, 0
        ret
mmio_send_notinit:
        movi r1, 1
        ret
mmio_send_badlen:
        movi r1, 2
        ret

drv_recv:                        ; r1 buf, r2 bufsz -> r1 len
        mov r10, r1
        mov r11, r2
        movi r9, MN_BASE
        movi r4, 0
        stw [r9+0xE], r4
        ldw r4, [r9+4]           ; status
        testi r4, 4              ; RXRDY
        jeq mmio_recv_none
        movi r4, 2
        stw [r9+0xE], r4
        ldw r12, [r9+8]          ; RxLen
        cmp r12, r11
        jbe mmio_recv_sized
        mov r12, r11             ; clamp
mmio_recv_sized:
        movi r5, 0
mmio_recv_fifo:
        cmp r5, r12
        jae mmio_recv_ack
        ldw r7, [r9+0]           ; FIFO window
        mov r6, r10
        add r6, r5
        stb [r6], r7
        addi r5, 1
        jmp mmio_recv_fifo
mmio_recv_ack:
        movi r4, 0
        stw [r9+0xE], r4
        movi r4, 4               ; RXACK
        stw [r9+8], r4
        mov r1, r12
        ret
mmio_recv_none:
        movi r1, 0
        ret

drv_ioctl:                       ; r1 code, r2 arg -> r1
        cmpi r1, 1
        jeq mmio_ioctl_mac
        movi r1, 0xFFFFFFFF
        ret
mmio_ioctl_mac:
        movi r9, MN_BASE
        movi r4, 1
        stw [r9+0xE], r4
        ldw r1, [r9+0]
        movi r4, 0
        stw [r9+0xE], r4
        ret

drv_isr:
        push r4
        push r5
        movi r4, G_STATS
        ldw r5, [r4]
        addi r5, 1
        stw [r4], r5
        pop r5
        pop r4
        iret

drv_unload:
        movi r9, MN_BASE
        movi r4, 0
        stw [r9+0xE], r4
        movi r4, 1               ; reset
        stw [r9+8], r4
        movi r1, 0
        ret
)";
}

/** Ring-buffer DMA ("rtl8139") driver — clean; the ring wraparound
 *  logic gives the richest control flow of the four. */
std::string
ringDriverSource()
{
    return std::string(kDriverEqus) + R"(
        .equ RN_CMD, 0x60
        .equ RN_STATUS, 0x61
        .equ RN_RINGADDR, 0x62
        .equ RN_RINGSIZE, 0x63
        .equ RN_WRPTR, 0x64
        .equ RN_RDPTR, 0x65
        .equ RN_TXADDR, 0x66
        .equ RN_TXLEN, 0x67
        .equ G_RING,    0x28018   ; ring base pointer
        .equ G_RINGSZ,  0x2801C
        .equ G_RD,      0x28024   ; local read pointer

        .org 0x20000
drv_init:
        ; allocate the receive ring
        movi r0, 4
        movi r1, 128
        int 0x30
        cmpi r1, 0
        jeq ring_init_nomem
        movi r4, G_RING
        stw [r4], r1
        movi r4, G_RINGSZ
        movi r5, 128
        stw [r4], r5
        out RN_RINGADDR, r1
        out RN_RINGSIZE, r5
        movi r4, drv_isr
        movi r5, IVT_NIC
        stw [r5], r4
        movi r4, 12              ; RXENABLE | IEN
        out RN_CMD, r4
        movi r4, G_INITED
        movi r5, 1
        stw [r4], r5
        movi r1, 0
        ret
ring_init_nomem:
        movi r1, 1
        ret

drv_send:                        ; r1 ptr, r2 len -> r1
        movi r4, G_INITED
        ldw r4, [r4]
        cmpi r4, 0
        jeq ring_send_notinit
        cmpi r2, 0
        jeq ring_send_badlen
        out RN_TXADDR, r1
        out RN_TXLEN, r2
        movi r4, 2               ; TX0
        out RN_CMD, r4
        movi r5, 4
ring_send_poll:
        in r4, RN_STATUS
        testi r4, 2
        jne ring_send_ok
        subi r5, 1
        cmpi r5, 0
        jne ring_send_poll
        movi r1, 2
        ret
ring_send_ok:
        movi r1, 0
        ret
ring_send_notinit:
        movi r1, 1
        ret
ring_send_badlen:
        movi r1, 3
        ret

; ring_readbyte: r4 = byte at local read ptr, advancing with wrap
ring_readbyte:
        movi r5, G_RING
        ldw r5, [r5]
        movi r6, G_RD
        ldw r7, [r6]
        mov r4, r5
        add r4, r7
        ldb r4, [r4]
        addi r7, 1
        movi r5, G_RINGSZ
        ldw r5, [r5]
        cmp r7, r5
        jb ring_readbyte_nowrap
        movi r7, 0
ring_readbyte_nowrap:
        stw [r6], r7
        ret

drv_recv:                        ; r1 buf, r2 bufsz -> r1 len
        mov r9, r1
        mov r10, r2
        movi r4, G_INITED
        ldw r4, [r4]
        cmpi r4, 0
        jeq ring_recv_none
        in r4, RN_WRPTR
        movi r5, G_RD
        ldw r5, [r5]
        cmp r4, r5
        jeq ring_recv_none       ; ring empty
        ; read the 4-byte length header
        call ring_readbyte
        mov r11, r4
        call ring_readbyte
        shli r4, 8
        or r11, r4
        call ring_readbyte
        shli r4, 16
        or r11, r4
        call ring_readbyte
        shli r4, 24
        or r11, r4
        ; defensive clamp against a corrupt header
        movi r5, G_RINGSZ
        ldw r5, [r5]
        cmp r11, r5
        jb ring_recv_lenok
        movi r1, 0               ; corrupt ring: drop everything
        movi r4, G_RD
        in r5, RN_WRPTR
        stw [r4], r5
        out RN_RDPTR, r5
        ret
ring_recv_lenok:
        movi r12, 0              ; copied count
ring_recv_copy:
        cmp r12, r11
        jae ring_recv_done
        call ring_readbyte
        cmp r12, r10             ; clamp to caller buffer
        jae ring_recv_skip
        mov r6, r9
        add r6, r12
        stb [r6], r4
ring_recv_skip:
        addi r12, 1
        jmp ring_recv_copy
ring_recv_done:
        ; publish the read pointer to the device
        movi r4, G_RD
        ldw r4, [r4]
        out RN_RDPTR, r4
        mov r1, r12
        cmp r12, r10
        jbe ring_recv_ret
        mov r1, r10
ring_recv_ret:
        ret
ring_recv_none:
        movi r1, 0
        ret

drv_ioctl:                       ; r1 code, r2 arg -> r1
        cmpi r1, 1
        jeq ring_ioctl_wrptr
        cmpi r1, 2
        jeq ring_ioctl_stats
        movi r1, 0xFFFFFFFF
        ret
ring_ioctl_wrptr:
        in r1, RN_WRPTR
        ret
ring_ioctl_stats:
        movi r4, G_STATS
        ldw r1, [r4]
        ret

drv_isr:
        push r4
        push r5
        movi r4, G_STATS
        ldw r5, [r4]
        addi r5, 1
        stw [r4], r5
        pop r5
        pop r4
        iret

drv_unload:
        movi r4, 1               ; reset (drops the ring registration)
        out RN_CMD, r4
        movi r4, G_RING
        ldw r1, [r4]
        cmpi r1, 0
        jeq ring_unload_done
        movi r0, 5
        int 0x30
        movi r4, G_RING
        movi r5, 0
        stw [r4], r5
ring_unload_done:
        movi r1, 0
        ret
)";
}

} // namespace

std::string
driverSource(DriverKind kind)
{
    switch (kind) {
      case DriverKind::Dma: return dmaDriverSource();
      case DriverKind::Pio: return pioDriverSource();
      case DriverKind::Mmio: return mmioDriverSource();
      case DriverKind::Ring: return ringDriverSource();
    }
    panic("driverSource: bad kind");
}

std::string
driverHarnessSource()
{
    return R"(
        ; drivers may clobber any register, so the harness keeps its
        ; pointers in memory slots
        .equ H_RXPTR, 0x40060
        .equ H_TXPTR, 0x40064
        .equ H_INITST, 0x40068

        .org 0x30000
        .entry harness_main
harness_main:
        movi sp, 0x7F000
        sti
        call drv_init
        movi r4, H_INITST
        stw [r4], r1
        ; user rx buffer (8 bytes)
        movi r0, 4
        movi r1, 8
        int 0x30
        movi r4, H_RXPTR
        stw [r4], r1
        movi r4, H_INITST
        ldw r4, [r4]
        cmpi r4, 0
        jne harness_cleanup      ; init failed
        ; exercise ioctl
        movi r1, 2
        movi r2, 1500
        call drv_ioctl
        movi r1, 1
        movi r2, 0
        call drv_ioctl
        ; tx buffer
        movi r0, 4
        movi r1, 32
        int 0x30
        movi r4, H_TXPTR
        stw [r4], r1
        cmpi r1, 0
        jeq harness_cleanup
        movi r2, 0x5A
        movi r3, 32
        call memset
        movi r4, H_TXPTR
        ldw r1, [r4]
        movi r2, 32
        call drv_send
        ; receive into the 8-byte user buffer
        movi r4, H_RXPTR
        ldw r1, [r4]
        movi r2, 8
        call drv_recv
        ; release the tx buffer
        movi r0, 5
        movi r4, H_TXPTR
        ldw r1, [r4]
        int 0x30
harness_cleanup:
        movi r0, 5
        movi r4, H_RXPTR
        ldw r1, [r4]
        int 0x30
        call drv_unload
        hlt
)";
}

} // namespace s2e::guest
