/**
 * @file
 * The guest mini-kernel and kernel-mode library, in gisa assembly.
 *
 * kernelSource() returns the assembly for the kernel region: the
 * syscall dispatcher (int 0x30), a free-list heap allocator with
 * redzones and live/free chunk magics, the registry-like config
 * store, a panic routine, and the string library that applications
 * link against (the "environment" of the paper's experiments).
 *
 * Compose a guest system as kernelSource() + driverSource(...) +
 * application source, then assemble the concatenation.
 */

#ifndef S2E_GUEST_KERNEL_HH
#define S2E_GUEST_KERNEL_HH

#include <string>

#include "core/state.hh"
#include "guest/layout.hh"

namespace s2e::guest {

/** Kernel + library assembly (defines symbols used by apps/drivers). */
std::string kernelSource();

/**
 * Host-side helper: write a (key, value) pair into the guest config
 * store of a state (the MSWinRegistry-style input channel).
 */
void setConfig(core::ExecutionState &state, core::ExprBuilder &builder,
               uint32_t key, uint32_t value);

/** Host-side helper: copy a string into the config string area and
 *  return its guest address. Strings are packed sequentially. */
uint32_t addConfigString(core::ExecutionState &state,
                         core::ExprBuilder &builder, uint32_t offset,
                         const std::string &text);

} // namespace s2e::guest

#endif // S2E_GUEST_KERNEL_HH
