/**
 * @file
 * Guest memory layout and kernel ABI constants, shared between the
 * guest assembly sources and host-side tools/tests.
 *
 * The guest software stack stands in for the paper's Windows stack:
 * a mini-kernel (syscalls, heap allocator, registry-like config
 * store), a kernel-mode library (string routines, NIC helper lib),
 * drivers in a dedicated code region (the DDT/REV unit), and
 * applications on top.
 */

#ifndef S2E_GUEST_LAYOUT_HH
#define S2E_GUEST_LAYOUT_HH

#include <cstdint>

namespace s2e::guest {

// --- Memory map ---------------------------------------------------------

constexpr uint32_t kIvtBase = 0x100;       ///< interrupt vectors
constexpr uint32_t kKernelCode = 0x400;    ///< kernel + lib code
constexpr uint32_t kConfigStore = 0x8000;  ///< 32 (key,value) pairs
constexpr uint32_t kConfigStrings = 0x8200;///< string payload area
constexpr uint32_t kHeapState = 0xFF00;    ///< brk ptr, freelist head
constexpr uint32_t kHeapBase = 0x10000;
constexpr uint32_t kHeapEnd = 0x20000;
constexpr uint32_t kDriverCode = 0x20000;  ///< driver region (the unit)
constexpr uint32_t kDriverCodeEnd = 0x28000;
constexpr uint32_t kDriverData = 0x28000;  ///< driver globals
constexpr uint32_t kDriverDataEnd = 0x29000;
constexpr uint32_t kAppCode = 0x30000;
constexpr uint32_t kAppCodeEnd = 0x40000;
constexpr uint32_t kAppData = 0x40000;
constexpr uint32_t kStackTop = 0x7F000;
constexpr uint32_t kRamSize = 0x80000; ///< 512 KB guest RAM

// --- Syscall ABI (int 0x30; nr in r0, args r1..r3, result r1) ----------

constexpr uint32_t kSysExit = 1;
constexpr uint32_t kSysPutc = 2;
constexpr uint32_t kSysWrite = 3;
constexpr uint32_t kSysAlloc = 4;
constexpr uint32_t kSysFree = 5;
constexpr uint32_t kSysGetCfg = 6;
constexpr uint32_t kSysSetCfg = 7;

// --- Config-store keys (the MSWinRegistry analog) -----------------------

constexpr uint32_t kCfgCardType = 1;
constexpr uint32_t kCfgMacOverride = 2;
constexpr uint32_t kCfgPromiscuous = 3;
constexpr uint32_t kCfgLicensePtr = 4;
constexpr uint32_t kCfgMtu = 5;
constexpr uint32_t kCfgSymReply = 8; ///< ping: symbolify the reply

// --- Heap chunk magic ----------------------------------------------------

constexpr uint32_t kChunkLiveMagic = 0xA110C8ED;
constexpr uint32_t kChunkFreeMagic = 0xF4EE0000;
constexpr uint32_t kChunkRedzone = 8;

} // namespace s2e::guest

#endif // S2E_GUEST_LAYOUT_HH
