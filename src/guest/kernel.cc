#include "guest/kernel.hh"

namespace s2e::guest {

std::string
kernelSource()
{
    return R"(
; ===================== mini-kernel ====================================
        .equ CONSOLE, 0x10
        .equ CFG_STORE, 0x8000
        .equ HEAP_BRK_PTR, 0xFF00
        .equ FREELIST_HEAD, 0xFF04
        .equ HEAP_BASE, 0x10000
        .equ HEAP_END, 0x20000
        .equ LIVE_MAGIC, 0xA110C8ED
        .equ FREE_MAGIC, 0xF4EE0000

; Syscall vector (0x30): 0x100 + 4*0x30 = 0x1C0
        .org 0x1C0
        .word sys_dispatch

; Initial heap state
        .org 0xFF00
        .word HEAP_BASE          ; brk
        .word 0                  ; free list empty

        .org 0x400
; --- syscall dispatcher -----------------------------------------------
; ABI: nr in r0, args r1..r3, result r1. Clobbers r0, r2..r7.
sys_dispatch:
        cmpi r0, 1
        jeq sys_exit
        cmpi r0, 2
        jeq sys_putc
        cmpi r0, 3
        jeq sys_write
        cmpi r0, 4
        jeq sys_alloc
        cmpi r0, 5
        jeq sys_free
        cmpi r0, 6
        jeq sys_getcfg
        cmpi r0, 7
        jeq sys_setcfg
        jmp kpanic               ; unknown syscall

sys_exit:
        s2e_kill 0

sys_putc:
        out CONSOLE, r1
        iret

sys_write:                       ; r1 = ptr, r2 = len
sys_write_loop:
        cmpi r2, 0
        jeq sys_write_done
        ldb r3, [r1]
        out CONSOLE, r3
        addi r1, 1
        subi r2, 1
        jmp sys_write_loop
sys_write_done:
        iret

; --- allocator ---------------------------------------------------------
; Chunk layout: [size u32][magic u32][user data ...][8-byte redzone]
; Freed chunks keep a next pointer at user offset 0.
sys_alloc:                       ; r1 = size -> r1 = ptr or 0, r2 = size
        mov r2, r1               ; keep requested size for the hook
        addi r1, 7
        andi r1, 0xFFFFFFF8      ; round to 8
        mov r3, r1               ; r3 = rounded size
        ; first-fit scan of the free list
        movi r4, FREELIST_HEAD
        ldw r5, [r4]
sys_alloc_scan:
        cmpi r5, 0
        jeq sys_alloc_bump
        ldw r6, [r5]             ; candidate size
        cmp r6, r3
        jae sys_alloc_take
        mov r4, r5
        addi r4, 8               ; &chunk->next (user offset 0)
        ldw r5, [r4]
        jmp sys_alloc_scan
sys_alloc_take:
        ldw r6, [r5+8]           ; next
        stw [r4], r6             ; unlink
        movi r6, LIVE_MAGIC
        stw [r5+4], r6
        mov r1, r5
        addi r1, 8
        jmp sys_alloc_done
sys_alloc_bump:
        movi r4, HEAP_BRK_PTR
        ldw r5, [r4]
        mov r6, r5
        add r6, r3
        addi r6, 16              ; header + redzone
        movi r7, HEAP_END
        cmp r6, r7
        ja sys_alloc_fail
        stw [r4], r6
        stw [r5], r3
        movi r6, LIVE_MAGIC
        stw [r5+4], r6
        mov r1, r5
        addi r1, 8
        jmp sys_alloc_done
sys_alloc_fail:
        movi r1, 0
sys_alloc_done:                  ; MemoryChecker hook: r1 = ptr, r2 = size
        iret

sys_free:                        ; r1 = ptr
sys_free_entry:                  ; MemoryChecker hook: r1 = ptr
        cmpi r1, 0
        jeq sys_free_done
        mov r2, r1
        subi r2, 8
        ldw r3, [r2+4]
        movi r4, LIVE_MAGIC
        cmp r3, r4
        jne kpanic               ; bad/double free corrupts the heap
        movi r3, FREE_MAGIC
        stw [r2+4], r3
        movi r4, FREELIST_HEAD
        ldw r5, [r4]
        stw [r2+8], r5
        stw [r4], r2
sys_free_done:
        iret

; --- config store (registry analog) ------------------------------------
sys_getcfg:                      ; r1 = key -> r1 = value (0 if absent)
        movi r2, CFG_STORE
        movi r3, 0
sys_getcfg_scan:
        cmpi r3, 32
        jae sys_getcfg_missing
        ldw r4, [r2]
        cmp r4, r1
        jeq sys_getcfg_hit
        addi r2, 8
        addi r3, 1
        jmp sys_getcfg_scan
sys_getcfg_hit:
        ldw r1, [r2+4]
        iret
sys_getcfg_missing:
        movi r1, 0
        iret

sys_setcfg:                      ; r1 = key, r2 = value
        movi r3, CFG_STORE
        movi r4, 0
sys_setcfg_scan:
        cmpi r4, 32
        jae kpanic               ; store full
        ldw r5, [r3]
        cmp r5, r1               ; existing key
        jeq sys_setcfg_put
        cmpi r5, 0               ; empty slot
        jeq sys_setcfg_claim
        addi r3, 8
        addi r4, 1
        jmp sys_setcfg_scan
sys_setcfg_claim:
        stw [r3], r1
sys_setcfg_put:
        stw [r3+4], r2
        iret

; --- panic --------------------------------------------------------------
kpanic:
        movi r1, 'P'
        out CONSOLE, r1
        movi r1, 'A'
        out CONSOLE, r1
        movi r1, 'N'
        out CONSOLE, r1
        movi r1, 'I'
        out CONSOLE, r1
        movi r1, 'C'
        out CONSOLE, r1
        s2e_kill 0xEE

; ===================== kernel library ==================================
; Call ABI: args r1..r3, result r1; r4..r7 are scratch. Args clobbered.

; strlen(r1 str) -> r1
strlen:
        mov r4, r1
        movi r1, 0
strlen_loop:
        ldb r5, [r4]
        cmpi r5, 0
        jeq strlen_done
        addi r1, 1
        addi r4, 1
        jmp strlen_loop
strlen_done:
        ret

; memcpy(r1 dst, r2 src, r3 len)
memcpy:
        cmpi r3, 0
        jeq memcpy_done
        ldb r4, [r2]
        stb [r1], r4
        addi r1, 1
        addi r2, 1
        subi r3, 1
        jmp memcpy
memcpy_done:
        ret

; memset(r1 dst, r2 val, r3 len)
memset:
        cmpi r3, 0
        jeq memset_done
        stb [r1], r2
        addi r1, 1
        subi r3, 1
        jmp memset
memset_done:
        ret

; strcmp(r1 a, r2 b) -> r1 (0 if equal, 1 otherwise)
strcmp:
strcmp_loop:
        ldb r4, [r1]
        ldb r5, [r2]
        cmp r4, r5
        jne strcmp_diff
        cmpi r4, 0
        jeq strcmp_equal
        addi r1, 1
        addi r2, 1
        jmp strcmp_loop
strcmp_equal:
        movi r1, 0
        ret
strcmp_diff:
        movi r1, 1
        ret

; strncpy(r1 dst, r2 src, r3 n): copies at most n bytes, NUL-padding
strncpy:
strncpy_loop:
        cmpi r3, 0
        jeq strncpy_done
        ldb r4, [r2]
        stb [r1], r4
        addi r1, 1
        subi r3, 1
        cmpi r4, 0
        jeq strncpy_pad
        addi r2, 1
        jmp strncpy_loop
strncpy_pad:
        cmpi r3, 0
        jeq strncpy_done
        movi r4, 0
        stb [r1], r4
        addi r1, 1
        subi r3, 1
        jmp strncpy_pad
strncpy_done:
        ret

; checksum16(r1 buf, r2 len) -> r1: rotating 16-bit byte sum
checksum16:
        movi r4, 0
checksum_loop:
        cmpi r2, 0
        jeq checksum_done
        ldb r5, [r1]
        add r4, r5
        shli r4, 1               ; rotate-ish mix
        mov r5, r4
        shri r5, 16
        andi r4, 0xFFFF
        add r4, r5
        addi r1, 1
        subi r2, 1
        jmp checksum_loop
checksum_done:
        mov r1, r4
        andi r1, 0xFFFF
        ret
)";
}

void
setConfig(core::ExecutionState &state, core::ExprBuilder &builder,
          uint32_t key, uint32_t value)
{
    for (unsigned slot = 0; slot < 32; ++slot) {
        uint32_t addr = kConfigStore + slot * 8;
        core::Value existing = state.mem.read(addr, 4, builder);
        uint32_t k = existing.isConcrete() ? existing.concrete() : 0;
        if (k == 0 || k == key) {
            state.mem.write(addr, core::Value(key), 4, builder);
            state.mem.write(addr + 4, core::Value(value), 4, builder);
            return;
        }
    }
    panic("guest config store full");
}

uint32_t
addConfigString(core::ExecutionState &state, core::ExprBuilder &builder,
                uint32_t offset, const std::string &text)
{
    uint32_t addr = kConfigStrings + offset;
    for (size_t i = 0; i < text.size(); ++i)
        state.mem.write(addr + static_cast<uint32_t>(i),
                        core::Value(static_cast<uint32_t>(text[i])), 1,
                        builder);
    state.mem.write(addr + static_cast<uint32_t>(text.size()),
                    core::Value(0u), 1, builder);
    return addr;
}

} // namespace s2e::guest
