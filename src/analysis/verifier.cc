#include "analysis/verifier.hh"

#include <vector>

#include "analysis/dataflow.hh"
#include "support/logging.hh"

namespace s2e::analysis {

using dbt::MicroOp;
using dbt::TranslationBlock;
using dbt::UOp;

namespace {

/** The S2Op payload must be one of the opcodes execS2Op handles. */
bool
validS2Payload(uint32_t imm)
{
    switch (static_cast<isa::Opcode>(imm)) {
      case isa::Opcode::Cli:
      case isa::Opcode::Sti:
      case isa::Opcode::S2SymMem:
      case isa::Opcode::S2SymReg:
      case isa::Opcode::S2SymRange:
      case isa::Opcode::S2Ena:
      case isa::Opcode::S2Dis:
      case isa::Opcode::S2Out:
      case isa::Opcode::S2Kill:
      case isa::Opcode::S2Merge:
      case isa::Opcode::S2Assert:
      case isa::Opcode::S2Concrete:
        return true;
      default:
        return false;
    }
}

VerifyResult
fail(size_t op_index, std::string error)
{
    VerifyResult r;
    r.ok = false;
    r.opIndex = op_index;
    r.error = std::move(error);
    return r;
}

} // namespace

VerifyResult
verifyBlock(const TranslationBlock &tb)
{
    const size_t n = tb.ops.size();

    // Instruction maps: parallel arrays, indexes non-decreasing and
    // inside ops[].
    if (tb.instrOpIndex.size() != tb.instrPcs.size())
        return fail(n, strprintf("instrOpIndex has %zu entries for %zu "
                                 "instructions",
                                 tb.instrOpIndex.size(),
                                 tb.instrPcs.size()));
    if (tb.marked.size() != tb.instrPcs.size())
        return fail(n, strprintf("marked has %zu entries for %zu "
                                 "instructions",
                                 tb.marked.size(), tb.instrPcs.size()));
    for (size_t i = 0; i < tb.instrOpIndex.size(); ++i) {
        if (tb.instrOpIndex[i] > n)
            return fail(n, strprintf("instrOpIndex[%zu]=%u beyond %zu ops",
                                     i, tb.instrOpIndex[i], n));
        if (i > 0 && tb.instrOpIndex[i] < tb.instrOpIndex[i - 1])
            return fail(n, strprintf("instrOpIndex[%zu]=%u decreases "
                                     "(prev %u)",
                                     i, tb.instrOpIndex[i],
                                     tb.instrOpIndex[i - 1]));
    }

    // A decode-fault block (no instructions) must carry no ops; any
    // other block ends with exactly one terminator.
    if (tb.instrPcs.empty()) {
        if (n != 0)
            return fail(0, strprintf("%zu ops in a block with no "
                                     "instructions",
                                     n));
        return {};
    }
    if (n == 0)
        return fail(0, "block with instructions but no ops");
    // S2Kill / S2Merge end the block from inside execS2Op (the engine
    // kills or parks the state), so an S2Op carrying them is a valid
    // last op even though the uop kind is not a branch terminator.
    auto s2EndsBlock = [](const MicroOp &op) {
        if (op.op != UOp::S2Op)
            return false;
        auto payload = static_cast<isa::Opcode>(op.imm);
        return payload == isa::Opcode::S2Kill ||
               payload == isa::Opcode::S2Merge;
    };
    if (!isTerminator(tb.ops[n - 1].op) && !s2EndsBlock(tb.ops[n - 1]))
        return fail(n - 1, strprintf("last op is not a terminator: %s",
                                     tb.ops[n - 1].toString().c_str()));

    std::vector<bool> defined(tb.numTemps, false);
    for (size_t i = 0; i < n; ++i) {
        const MicroOp &op = tb.ops[i];
        OpEffects e = effectsOf(op);

        if (e.terminator && i != n - 1)
            return fail(i, strprintf("terminator %s before the last op",
                                     op.toString().c_str()));

        // Temp operands: in range, defined before use.
        auto check_use = [&](uint16_t t, char which) -> VerifyResult {
            if (t >= tb.numTemps)
                return fail(i, strprintf("operand %c: t%u out of range "
                                         "(numTemps=%u)",
                                         which, t, tb.numTemps));
            if (!defined[t])
                return fail(i,
                            strprintf("operand %c: t%u used before "
                                      "definition",
                                      which, t));
            return {};
        };
        if (e.usesA)
            if (auto r = check_use(op.a, 'a'); !r)
                return r;
        if (e.usesB)
            if (auto r = check_use(op.b, 'b'); !r)
                return r;
        if (e.defsTemp) {
            if (op.dst >= tb.numTemps)
                return fail(i, strprintf("dst t%u out of range "
                                         "(numTemps=%u)",
                                         op.dst, tb.numTemps));
            defined[op.dst] = true;
        }

        // Register / flag id ranges.
        switch (op.op) {
          case UOp::GetReg:
          case UOp::SetReg:
            if (op.reg >= isa::kNumRegs)
                return fail(i, strprintf("register id %u out of range",
                                         op.reg));
            break;
          case UOp::GetFlag:
          case UOp::SetFlag:
            if (op.reg >= kNumFlags)
                return fail(i,
                            strprintf("flag id %u out of range", op.reg));
            break;
          case UOp::Load:
          case UOp::Store:
            if (op.size != 1 && op.size != 2 && op.size != 4)
                return fail(i, strprintf("access size %u not in {1,2,4}",
                                         op.size));
            break;
          case UOp::S2Op:
            if (!validS2Payload(op.imm))
                return fail(i, strprintf("s2op payload 0x%x is not a "
                                         "custom opcode",
                                         op.imm));
            if ((static_cast<isa::Opcode>(op.imm) ==
                     isa::Opcode::S2SymReg ||
                 static_cast<isa::Opcode>(op.imm) ==
                     isa::Opcode::S2SymRange ||
                 static_cast<isa::Opcode>(op.imm) ==
                     isa::Opcode::S2Concrete) &&
                op.reg >= isa::kNumRegs)
                return fail(i, strprintf("s2op register id %u out of "
                                         "range",
                                         op.reg));
            break;
          default:
            break;
        }
    }
    return {};
}

void
verifyOrPanic(const TranslationBlock &tb, const char *context)
{
    VerifyResult r = verifyBlock(tb);
    if (!r)
        panic("TB verifier (%s): %s at op %zu of:\n%s", context,
              r.error.c_str(), r.opIndex, tb.toString().c_str());
}

} // namespace s2e::analysis
