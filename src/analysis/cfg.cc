#include "analysis/cfg.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace s2e::analysis {

namespace {

/** Longest gisa encoding (s2e_symrange: op + reg + two imm32). */
constexpr size_t kMaxInstrLen = 10;

/** Copy up to n image bytes at addr; returns bytes available. */
size_t
fetch(const isa::Program &program, uint32_t addr, uint8_t *buf, size_t n)
{
    for (const auto &sec : program.sections) {
        if (addr < sec.addr || addr >= sec.addr + sec.bytes.size())
            continue;
        size_t off = addr - sec.addr;
        size_t avail = std::min(n, sec.bytes.size() - off);
        std::memcpy(buf, sec.bytes.data() + off, avail);
        return avail;
    }
    return 0;
}

/** Control-flow classification of a decoded instruction. */
struct Flow {
    bool endsBlock = false;
    bool fallsThrough = false;   ///< pc+len is a successor
    bool indirect = false;       ///< has a statically unknown target
    std::vector<uint32_t> targets;
};

Flow
flowOf(const isa::Instruction &in, uint32_t pc)
{
    Flow f;
    switch (in.op) {
      case isa::Opcode::Jmp:
        f.endsBlock = true;
        f.targets.push_back(in.imm);
        break;
      case isa::Opcode::Jcc:
        f.endsBlock = true;
        f.fallsThrough = true;
        f.targets.push_back(in.imm);
        break;
      case isa::Opcode::Call:
        // The callee and the return point are both reachable.
        f.endsBlock = true;
        f.fallsThrough = true;
        f.targets.push_back(in.imm);
        break;
      case isa::Opcode::CallR:
        f.endsBlock = true;
        f.fallsThrough = true;
        f.indirect = true;
        break;
      case isa::Opcode::Int:
        // Handler address lives in the runtime-written IVT: the
        // canonical statically-invisible edge. Execution resumes
        // after the int once the handler irets.
        f.endsBlock = true;
        f.fallsThrough = true;
        f.indirect = true;
        break;
      case isa::Opcode::JmpR:
      case isa::Opcode::Ret:
      case isa::Opcode::Iret:
        f.endsBlock = true;
        f.indirect = true;
        break;
      case isa::Opcode::Hlt:
      case isa::Opcode::S2Kill:
        f.endsBlock = true;
        break;
      default:
        f.fallsThrough = true;
        break;
    }
    (void)pc;
    return f;
}

} // namespace

StaticCfg
recoverStaticCfg(const isa::Program &program,
                 const std::vector<uint32_t> &entries, uint32_t lo,
                 uint32_t hi)
{
    StaticCfg cfg;

    struct Decoded {
        isa::Instruction instr;
        Flow flow;
    };
    std::map<uint32_t, Decoded> decoded;
    std::set<uint32_t> leaders;
    std::vector<uint32_t> work;

    auto in_range = [&](uint32_t pc) { return pc >= lo && pc < hi; };
    auto enqueue = [&](uint32_t pc) {
        if (in_range(pc) && decoded.count(pc) == 0)
            work.push_back(pc);
    };

    for (uint32_t e : entries) {
        if (!in_range(e))
            continue;
        cfg.entries.push_back(e);
        leaders.insert(e);
        enqueue(e);
    }

    // Phase 1: recursive-descent decode along all direct paths.
    while (!work.empty()) {
        uint32_t pc = work.back();
        work.pop_back();
        while (in_range(pc) && decoded.count(pc) == 0) {
            uint8_t buf[kMaxInstrLen];
            size_t avail = fetch(program, pc, buf, sizeof(buf));
            isa::Instruction in;
            if (avail == 0 || !isa::decode(buf, avail, in))
                break; // data or a hole: stop this path
            Decoded d{in, flowOf(in, pc)};
            decoded.emplace(pc, d);
            for (uint32_t t : d.flow.targets) {
                if (in_range(t)) {
                    leaders.insert(t);
                    enqueue(t);
                }
            }
            if (d.flow.indirect)
                cfg.unresolvedIndirects.push_back(pc);
            uint32_t next = pc + in.length;
            if (!d.flow.endsBlock) {
                pc = next;
                continue;
            }
            if (d.flow.fallsThrough && in_range(next)) {
                leaders.insert(next);
                pc = next;
                continue;
            }
            break;
        }
    }
    std::sort(cfg.unresolvedIndirects.begin(),
              cfg.unresolvedIndirects.end());
    for (const auto &[pc, d] : decoded)
        cfg.instrPcs.insert(pc);

    // Phase 2: partition the decoded instructions into basic blocks.
    // A block starts at each leader and ends at a control transfer,
    // before the next leader, or at a decode gap.
    for (auto it = decoded.begin(); it != decoded.end(); ++it) {
        uint32_t start = it->first;
        if (leaders.count(start) == 0)
            continue;
        StaticCfg::Block blk;
        blk.pc = start;
        auto cur = it;
        while (true) {
            uint32_t pc = cur->first;
            const Decoded &d = cur->second;
            uint32_t next = pc + d.instr.length;
            blk.instrPcs.push_back(pc);
            blk.end = next;
            bool next_decoded =
                decoded.count(next) != 0 &&
                std::next(cur) != decoded.end() &&
                std::next(cur)->first == next;
            if (d.flow.endsBlock) {
                blk.indirectExit = d.flow.indirect;
                for (uint32_t t : d.flow.targets)
                    if (in_range(t))
                        blk.successors.insert(t);
                if (d.flow.fallsThrough && next_decoded)
                    blk.successors.insert(next);
                break;
            }
            if (!next_decoded) // flowed into a hole
                break;
            if (leaders.count(next)) { // next block begins here
                blk.successors.insert(next);
                break;
            }
            ++cur;
        }
        cfg.blocks.emplace(start, std::move(blk));
    }

    // Phase 3: dominators (iterative Cooper/Harvey/Kennedy over RPO),
    // rooted at a virtual entry fanning into all real entries.
    std::vector<uint32_t> pcs;
    pcs.reserve(cfg.blocks.size());
    std::map<uint32_t, int> index;
    for (const auto &[pc, blk] : cfg.blocks) {
        index[pc] = static_cast<int>(pcs.size());
        pcs.push_back(pc);
    }
    const int n = static_cast<int>(pcs.size());
    const int root = n; // virtual entry
    std::vector<std::vector<int>> preds(n + 1);
    for (const auto &[pc, blk] : cfg.blocks)
        for (uint32_t s : blk.successors)
            if (auto si = index.find(s); si != index.end())
                preds[si->second].push_back(index[pc]);
    for (uint32_t e : cfg.entries)
        if (auto ei = index.find(e); ei != index.end())
            preds[ei->second].push_back(root);

    // Reverse postorder from the virtual root.
    std::vector<int> rpo;
    {
        std::vector<char> seen(n + 1, 0);
        // Iterative DFS with an explicit post stack.
        std::vector<std::pair<int, size_t>> stack;
        auto succs_of = [&](int v) -> std::vector<int> {
            std::vector<int> out;
            if (v == root) {
                for (uint32_t e : cfg.entries)
                    if (auto ei = index.find(e); ei != index.end())
                        out.push_back(ei->second);
            } else {
                for (uint32_t s : cfg.blocks[pcs[v]].successors)
                    if (auto si = index.find(s); si != index.end())
                        out.push_back(si->second);
            }
            return out;
        };
        std::vector<int> post;
        stack.push_back({root, 0});
        seen[root] = 1;
        std::vector<std::vector<int>> succ_cache(n + 1);
        succ_cache[root] = succs_of(root);
        while (!stack.empty()) {
            auto &[v, i] = stack.back();
            if (i < succ_cache[v].size()) {
                int s = succ_cache[v][i++];
                if (!seen[s]) {
                    seen[s] = 1;
                    succ_cache[s] = succs_of(s);
                    stack.push_back({s, 0});
                }
            } else {
                post.push_back(v);
                stack.pop_back();
            }
        }
        rpo.assign(post.rbegin(), post.rend());
    }
    std::vector<int> rpo_num(n + 1, -1);
    for (size_t i = 0; i < rpo.size(); ++i)
        rpo_num[rpo[i]] = static_cast<int>(i);

    std::vector<int> idom(n + 1, -1);
    idom[root] = root;
    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpo_num[a] > rpo_num[b])
                a = idom[a];
            while (rpo_num[b] > rpo_num[a])
                b = idom[b];
        }
        return a;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (int v : rpo) {
            if (v == root)
                continue;
            int new_idom = -1;
            for (int p : preds[v]) {
                if (idom[p] < 0)
                    continue;
                new_idom = new_idom < 0 ? p : intersect(p, new_idom);
            }
            if (new_idom >= 0 && idom[v] != new_idom) {
                idom[v] = new_idom;
                changed = true;
            }
        }
    }
    for (int v = 0; v < n; ++v) {
        auto &blk = cfg.blocks[pcs[v]];
        blk.idom = (idom[v] < 0 || idom[v] == root) ? blk.pc
                                                    : pcs[idom[v]];
    }
    return cfg;
}

std::string
StaticCfg::toString() const
{
    std::string out = strprintf(
        "static cfg: %zu blocks, %zu instructions, %zu entries, "
        "%zu unresolved indirect transfers\n",
        blocks.size(), instrPcs.size(), entries.size(),
        unresolvedIndirects.size());
    for (const auto &[pc, blk] : blocks) {
        out += strprintf("  block 0x%05x..0x%05x (%zu instrs) idom=0x%05x",
                         blk.pc, blk.end, blk.instrPcs.size(), blk.idom);
        if (!blk.successors.empty()) {
            out += " ->";
            for (uint32_t s : blk.successors)
                out += strprintf(" 0x%05x", s);
        }
        if (blk.indirectExit)
            out += " [indirect]";
        out += "\n";
    }
    for (uint32_t pc : unresolvedIndirects)
        out += strprintf("  unresolved indirect at 0x%05x\n", pc);
    return out;
}

CfgDiff
diffCfg(const StaticCfg &cfg, const std::set<uint32_t> &dynamicBlockPcs)
{
    CfgDiff diff;
    // Dynamic TBs split at different points than the static block
    // partition (instruction-count limits, interrupt resume pcs), so
    // a dynamic pc counts as statically known when it lands on any
    // statically decoded instruction.
    for (uint32_t pc : dynamicBlockPcs) {
        if (cfg.instrPcs.count(pc))
            diff.shared.push_back(pc);
        else
            diff.dynamicOnly.push_back(pc);
    }
    for (const auto &[pc, blk] : cfg.blocks) {
        bool executed = false;
        for (uint32_t ip : blk.instrPcs)
            if (dynamicBlockPcs.count(ip)) {
                executed = true;
                break;
            }
        if (!executed)
            diff.staticOnly.push_back(pc);
    }
    return diff;
}

std::string
CfgDiff::toString() const
{
    std::string out = strprintf(
        "cfg diff: %zu shared, %zu static-only, %zu dynamic-only\n",
        shared.size(), staticOnly.size(), dynamicOnly.size());
    auto dump = [&](const char *label, const std::vector<uint32_t> &v) {
        for (uint32_t pc : v)
            out += strprintf("  %s 0x%05x\n", label, pc);
    };
    dump("static-only ", staticOnly);
    dump("dynamic-only", dynamicOnly);
    return out;
}

} // namespace s2e::analysis
