#include "analysis/passes.hh"

#include <vector>

#include "analysis/dataflow.hh"

namespace s2e::analysis {

using dbt::MicroOp;
using dbt::TranslationBlock;
using dbt::UOp;

namespace {

/**
 * Drop the ops where keep[i] is false and shift instrOpIndex so each
 * instruction still points at its first surviving op.
 */
size_t
removeOps(TranslationBlock &tb, const std::vector<bool> &keep)
{
    // new_index_before[i] = surviving ops among ops[0..i).
    std::vector<uint32_t> new_index_before(tb.ops.size() + 1, 0);
    for (size_t i = 0; i < tb.ops.size(); ++i)
        new_index_before[i + 1] =
            new_index_before[i] + (keep[i] ? 1 : 0);

    size_t removed = tb.ops.size() - new_index_before[tb.ops.size()];
    if (removed == 0)
        return 0;

    std::vector<MicroOp> kept;
    kept.reserve(new_index_before[tb.ops.size()]);
    for (size_t i = 0; i < tb.ops.size(); ++i)
        if (keep[i])
            kept.push_back(tb.ops[i]);
    tb.ops = std::move(kept);

    for (auto &idx : tb.instrOpIndex)
        idx = new_index_before[idx];
    return removed;
}

} // namespace

size_t
constantFold(TranslationBlock &tb, PassStats *stats)
{
    Constants consts = computeConstants(tb);
    size_t folded = 0;
    for (size_t i = 0; i < tb.ops.size(); ++i) {
        MicroOp &op = tb.ops[i];
        if (op.op == UOp::Branch && consts.branchTarget) {
            MicroOp folded_goto;
            folded_goto.op = UOp::Goto;
            folded_goto.imm = *consts.branchTarget;
            op = folded_goto;
            if (stats)
                stats->branchesFolded++;
            continue;
        }
        if (!consts.result[i] || op.op == UOp::Const)
            continue;
        // Only pure producers may be replaced; Load/In keep their
        // side effects even when their result were predictable.
        switch (op.op) {
          case UOp::GetReg:
          case UOp::GetFlag:
          case UOp::Not:
          case UOp::Neg:
          case UOp::Add:
          case UOp::Sub:
          case UOp::Mul:
          case UOp::UDiv:
          case UOp::SDiv:
          case UOp::URem:
          case UOp::SRem:
          case UOp::And:
          case UOp::Or:
          case UOp::Xor:
          case UOp::Shl:
          case UOp::Shr:
          case UOp::Sar:
          case UOp::CmpEq:
          case UOp::CmpUlt:
          case UOp::CmpSlt: {
            MicroOp c;
            c.op = UOp::Const;
            c.dst = op.dst;
            c.imm = *consts.result[i];
            op = c;
            folded++;
            break;
          }
          default:
            break;
        }
    }
    if (stats)
        stats->constFolded += folded;
    return folded;
}

size_t
deadFlagElim(TranslationBlock &tb, PassStats *stats)
{
    // Forward scan: a SetFlag is dead when the same flag is written
    // again before any read. Reads are GetFlag and — conservatively —
    // any S2Op (execS2Op may fork/kill the path, making the packed
    // flags observable). The terminator keeps the final writers
    // alive: flags are architectural state across blocks.
    std::vector<bool> keep(tb.ops.size(), true);
    int last_set[kNumFlags] = {-1, -1, -1, -1};
    size_t removed = 0;

    for (size_t i = 0; i < tb.ops.size(); ++i) {
        const MicroOp &op = tb.ops[i];
        switch (op.op) {
          case UOp::GetFlag:
            if (op.reg < kNumFlags)
                last_set[op.reg] = -1;
            break;
          case UOp::SetFlag:
            if (op.reg < kNumFlags) {
                if (last_set[op.reg] >= 0) {
                    keep[last_set[op.reg]] = false;
                    removed++;
                }
                last_set[op.reg] = static_cast<int>(i);
            }
            break;
          case UOp::S2Op:
          case UOp::IntSw:
          case UOp::IretOp:
            for (auto &s : last_set)
                s = -1;
            break;
          default:
            break;
        }
    }
    removeOps(tb, keep);
    if (stats)
        stats->deadFlagOps += removed;
    return removed;
}

size_t
deadTempElim(TranslationBlock &tb, PassStats *stats)
{
    Liveness lv = computeLiveness(tb);
    size_t removed = removeOps(tb, lv.liveOps);
    if (stats) {
        // computeLiveness also classifies dead SetFlags; attribute
        // them separately so the stats stay meaningful when this pass
        // runs without deadFlagElim.
        stats->deadFlagOps += lv.deadFlagWrites;
        stats->deadTempOps += removed - lv.deadFlagWrites;
    }
    return removed;
}

void
compactTemps(TranslationBlock &tb)
{
    constexpr uint16_t kUnmapped = 0xFFFF;
    std::vector<uint16_t> remap(tb.numTemps, kUnmapped);
    uint16_t next = 0;
    for (auto &op : tb.ops) {
        OpEffects e = effectsOf(op);
        auto map = [&](uint16_t t) {
            if (t < remap.size() && remap[t] == kUnmapped)
                remap[t] = next++;
            return t < remap.size() ? remap[t] : t;
        };
        // Map in program order; defs first keeps ids roughly ordered.
        if (e.defsTemp)
            op.dst = map(op.dst);
        if (e.usesA)
            op.a = map(op.a);
        if (e.usesB)
            op.b = map(op.b);
    }
    tb.numTemps = next;
}

void
optimizeBlock(TranslationBlock &tb, PassStats *stats)
{
    if (tb.instrPcs.empty())
        return; // decode-fault block, nothing to do
    if (stats) {
        stats->opsBefore = tb.ops.size();
        stats->tempsBefore = tb.numTemps;
    }
    // Each pass can expose work for the others (a folded branch kills
    // its condition chain; removed SetFlags strand their temps), so
    // iterate to fixpoint. Two rounds settle almost every block.
    for (unsigned round = 0; round < 4; ++round) {
        size_t changed = 0;
        changed += constantFold(tb, stats);
        changed += deadFlagElim(tb, stats);
        changed += deadTempElim(tb, stats);
        if (stats)
            stats->iterations = round + 1;
        if (changed == 0)
            break;
    }
    compactTemps(tb);
    if (stats) {
        stats->opsAfter = tb.ops.size();
        stats->tempsAfter = tb.numTemps;
    }
}

} // namespace s2e::analysis
