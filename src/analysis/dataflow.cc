#include "analysis/dataflow.hh"

#include <cstdint>

#include "support/logging.hh"

namespace s2e::analysis {

using dbt::MicroOp;
using dbt::TranslationBlock;
using dbt::UOp;

bool
isTerminator(UOp op)
{
    switch (op) {
      case UOp::Goto:
      case UOp::GotoInd:
      case UOp::Branch:
      case UOp::CallDir:
      case UOp::Ret:
      case UOp::IntSw:
      case UOp::IretOp:
      case UOp::Halt:
        return true;
      default:
        return false;
    }
}

OpEffects
effectsOf(const MicroOp &op)
{
    OpEffects e;
    switch (op.op) {
      case UOp::Const:
        e.defsTemp = true;
        break;
      case UOp::GetReg:
        e.defsTemp = true;
        break;
      case UOp::SetReg:
        e.usesA = true;
        e.sideEffect = true;
        break;
      case UOp::GetFlag:
        e.defsTemp = true;
        e.readsFlag = op.reg;
        break;
      case UOp::SetFlag:
        e.usesA = true;
        e.writesFlag = op.reg;
        break;

      case UOp::Not:
      case UOp::Neg:
        e.usesA = true;
        e.defsTemp = true;
        break;

      case UOp::Add:
      case UOp::Sub:
      case UOp::Mul:
      case UOp::UDiv:
      case UOp::SDiv:
      case UOp::URem:
      case UOp::SRem:
      case UOp::And:
      case UOp::Or:
      case UOp::Xor:
      case UOp::Shl:
      case UOp::Shr:
      case UOp::Sar:
      case UOp::CmpEq:
      case UOp::CmpUlt:
      case UOp::CmpSlt:
        e.usesA = true;
        e.usesB = true;
        e.defsTemp = true;
        break;

      case UOp::Load:
        e.usesA = true;
        e.defsTemp = true;
        e.sideEffect = true; // may fault / fork / fire events
        break;
      case UOp::Store:
        e.usesA = true;
        e.usesB = true;
        e.sideEffect = true;
        break;

      case UOp::In:
        e.usesA = true;
        e.defsTemp = true;
        e.sideEffect = true;
        break;
      case UOp::Out:
        e.usesA = true;
        e.usesB = true;
        e.sideEffect = true;
        break;

      case UOp::Goto:
      case UOp::CallDir:
      case UOp::IntSw:
      case UOp::IretOp:
      case UOp::Halt:
        e.sideEffect = true;
        e.terminator = true;
        break;
      case UOp::GotoInd:
      case UOp::Ret:
        e.usesA = true;
        e.sideEffect = true;
        e.terminator = true;
        break;
      case UOp::Branch:
        e.usesA = true;
        e.sideEffect = true;
        e.terminator = true;
        break;

      case UOp::S2Op:
        e.sideEffect = true;
        switch (static_cast<isa::Opcode>(op.imm)) {
          case isa::Opcode::S2SymMem:
          case isa::Opcode::S2SymRange:
            e.usesA = true;
            e.usesB = true;
            break;
          case isa::Opcode::S2Out:
          case isa::Opcode::S2Assert:
            e.usesA = true;
            break;
          default:
            break;
        }
        break;
    }
    return e;
}

DefUse
computeDefUse(const TranslationBlock &tb)
{
    DefUse du;
    du.temps.resize(tb.numTemps);
    for (size_t i = 0; i < tb.ops.size(); ++i) {
        const MicroOp &op = tb.ops[i];
        OpEffects e = effectsOf(op);
        if (e.usesA && op.a < du.temps.size())
            du.temps[op.a].uses.push_back(static_cast<uint32_t>(i));
        if (e.usesB && op.b < du.temps.size())
            du.temps[op.b].uses.push_back(static_cast<uint32_t>(i));
        if (e.defsTemp && op.dst < du.temps.size())
            du.temps[op.dst].def = static_cast<int>(i);
    }
    return du;
}

Liveness
computeLiveness(const TranslationBlock &tb)
{
    Liveness lv;
    lv.liveOps.assign(tb.ops.size(), false);
    std::vector<bool> live_temp(tb.numTemps, false);
    // Flags survive the block: the next block, an interrupt entry
    // (which pushes packed flags) or an iret may read them.
    bool live_flag[kNumFlags] = {true, true, true, true};

    for (size_t ri = tb.ops.size(); ri-- > 0;) {
        const MicroOp &op = tb.ops[ri];
        OpEffects e = effectsOf(op);

        bool live;
        if (e.sideEffect) {
            live = true;
        } else if (e.writesFlag >= 0) {
            live = live_flag[e.writesFlag];
            if (!live)
                lv.deadFlagWrites++;
        } else {
            // Pure op: live iff its destination is.
            live = e.defsTemp && op.dst < live_temp.size() &&
                   live_temp[op.dst];
            if (!live)
                lv.deadTempOps++;
        }
        lv.liveOps[ri] = live;
        if (!live)
            continue;

        if (e.defsTemp && op.dst < live_temp.size())
            live_temp[op.dst] = false;
        if (e.writesFlag >= 0)
            live_flag[e.writesFlag] = false;
        if (e.readsFlag >= 0 &&
            static_cast<unsigned>(e.readsFlag) < kNumFlags)
            live_flag[e.readsFlag] = true;
        if (e.usesA && op.a < live_temp.size())
            live_temp[op.a] = true;
        if (e.usesB && op.b < live_temp.size())
            live_temp[op.b] = true;
    }
    return lv;
}

uint32_t
foldBinary(UOp op, uint32_t a, uint32_t b)
{
    switch (op) {
      case UOp::Add: return a + b;
      case UOp::Sub: return a - b;
      case UOp::Mul: return a * b;
      case UOp::UDiv: return b ? a / b : 0xFFFFFFFFu;
      case UOp::SDiv: {
        auto sa = static_cast<int32_t>(a);
        auto sb = static_cast<int32_t>(b);
        if (sb == 0)
            return 0xFFFFFFFFu;
        if (sb == -1 && sa == INT32_MIN)
            return a;
        return static_cast<uint32_t>(sa / sb);
      }
      case UOp::URem: return b ? a % b : a;
      case UOp::SRem: {
        auto sa = static_cast<int32_t>(a);
        auto sb = static_cast<int32_t>(b);
        if (sb == 0)
            return a;
        if (sb == -1)
            return 0;
        return static_cast<uint32_t>(sa % sb);
      }
      case UOp::And: return a & b;
      case UOp::Or: return a | b;
      case UOp::Xor: return a ^ b;
      case UOp::Shl: return b >= 32 ? 0 : a << b;
      case UOp::Shr: return b >= 32 ? 0 : a >> b;
      case UOp::Sar: {
        auto sa = static_cast<int32_t>(a);
        return static_cast<uint32_t>(b >= 32 ? (sa < 0 ? -1 : 0)
                                             : (sa >> b));
      }
      case UOp::CmpEq: return a == b;
      case UOp::CmpUlt: return a < b;
      case UOp::CmpSlt:
        return static_cast<int32_t>(a) < static_cast<int32_t>(b);
      default:
        panic("foldBinary: bad uop");
    }
}

uint32_t
foldUnary(UOp op, uint32_t a)
{
    switch (op) {
      case UOp::Not: return ~a;
      case UOp::Neg: return 0 - a;
      default:
        panic("foldUnary: bad uop");
    }
}

Constants
computeConstants(const TranslationBlock &tb)
{
    Constants out;
    out.result.assign(tb.ops.size(), std::nullopt);

    std::vector<std::optional<uint32_t>> temp(tb.numTemps);
    std::optional<uint32_t> reg[isa::kNumRegs];
    std::optional<uint32_t> flag[kNumFlags];

    auto temp_of = [&](uint16_t t) -> std::optional<uint32_t> {
        return t < temp.size() ? temp[t] : std::nullopt;
    };

    for (size_t i = 0; i < tb.ops.size(); ++i) {
        const MicroOp &op = tb.ops[i];
        std::optional<uint32_t> value;
        switch (op.op) {
          case UOp::Const:
            value = op.imm;
            break;
          case UOp::GetReg:
            if (op.reg < isa::kNumRegs)
                value = reg[op.reg];
            break;
          case UOp::GetFlag:
            if (op.reg < kNumFlags)
                value = flag[op.reg];
            break;
          case UOp::SetReg:
            if (op.reg < isa::kNumRegs)
                reg[op.reg] = temp_of(op.a);
            break;
          case UOp::SetFlag:
            if (op.reg < kNumFlags)
                flag[op.reg] = temp_of(op.a);
            break;

          case UOp::Not:
          case UOp::Neg:
            if (auto a = temp_of(op.a))
                value = foldUnary(op.op, *a);
            break;

          case UOp::Add:
          case UOp::Sub:
          case UOp::Mul:
          case UOp::UDiv:
          case UOp::SDiv:
          case UOp::URem:
          case UOp::SRem:
          case UOp::And:
          case UOp::Or:
          case UOp::Xor:
          case UOp::Shl:
          case UOp::Shr:
          case UOp::Sar:
          case UOp::CmpEq:
          case UOp::CmpUlt:
          case UOp::CmpSlt: {
            auto a = temp_of(op.a);
            auto b = temp_of(op.b);
            if (a && b)
                value = foldBinary(op.op, *a, *b);
            break;
          }

          case UOp::Load:
          case UOp::In:
            break; // result unknowable statically

          case UOp::S2Op:
            // S2SymReg/S2Concrete rewrite registers, S2SymRange adds
            // constraints... invalidate all machine-state knowledge.
            for (auto &r : reg)
                r.reset();
            for (auto &f : flag)
                f.reset();
            break;

          case UOp::Branch:
            if (auto cond = temp_of(op.a))
                out.branchTarget = *cond ? op.imm : op.imm2;
            break;

          default:
            break; // other terminators, Store, Out: no temp result
        }

        OpEffects e = effectsOf(op);
        if (e.defsTemp && op.dst < temp.size()) {
            temp[op.dst] = value;
            if (value)
                out.result[i] = value;
        }
    }
    return out;
}

} // namespace s2e::analysis
