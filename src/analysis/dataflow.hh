/**
 * @file
 * Dataflow framework over straight-line translation blocks.
 *
 * Everything the optimization passes (passes.hh) and the verifier
 * need to reason about a TB is derived from one table, effectsOf():
 * which temp operands a micro-op reads, whether it defines a temp,
 * which condition flag it reads or writes, and whether it has an
 * observable effect beyond temps and flags. On top of that sit three
 * reusable analyses:
 *
 *   - computeDefUse():    def-use chains for every temp;
 *   - computeLiveness():  backward liveness of temps *and* flags
 *                         (flags are live-out of every block — the
 *                         next block, an interrupt entry or an iret
 *                         may read them);
 *   - computeConstants(): forward constant propagation through temps
 *                         plus in-block register/flag values, with
 *                         folding of pure ops over constant inputs.
 *
 * All analyses are purely functional over the TB; none mutates it.
 */

#ifndef S2E_ANALYSIS_DATAFLOW_HH
#define S2E_ANALYSIS_DATAFLOW_HH

#include <optional>
#include <vector>

#include "dbt/ir.hh"

namespace s2e::analysis {

/** Number of condition flags (Z N C V). */
constexpr unsigned kNumFlags = 4;

/** Static read/write description of one micro-op. */
struct OpEffects {
    bool usesA = false;      ///< reads t[a]
    bool usesB = false;      ///< reads t[b]
    bool defsTemp = false;   ///< writes t[dst]
    int readsFlag = -1;      ///< flag id read, or -1
    int writesFlag = -1;     ///< flag id written, or -1
    /** Observable beyond temps/flags: registers, memory, I/O, path
     *  state, control flow. Ops without it are removable when their
     *  results are dead. Loads count as side-effecting: they can
     *  fault, fork on symbolic pointers and fire analyzer events. */
    bool sideEffect = false;
    bool terminator = false;
};

/** The effects table entry for `op`. */
OpEffects effectsOf(const dbt::MicroOp &op);

/** True for the eight block-ending micro-ops. */
bool isTerminator(dbt::UOp op);

// --- Def-use chains ------------------------------------------------------

struct DefUse {
    struct TempInfo {
        /** Op index of the (last) definition, -1 if never defined. */
        int def = -1;
        /** Op indexes reading the temp, in order. */
        std::vector<uint32_t> uses;
    };
    /** Indexed by temp id (size = tb.numTemps). */
    std::vector<TempInfo> temps;
};

DefUse computeDefUse(const dbt::TranslationBlock &tb);

// --- Liveness ------------------------------------------------------------

struct Liveness {
    /** Per-op: observable result or effect (dead ops are removable). */
    std::vector<bool> liveOps;
    /** SetFlag ops overwritten before any in-block read and before
     *  the terminator (the QEMU lazy-cc win). */
    size_t deadFlagWrites = 0;
    /** Pure ops whose destination temp is never needed. */
    size_t deadTempOps = 0;
};

Liveness computeLiveness(const dbt::TranslationBlock &tb);

// --- Constant propagation ------------------------------------------------

struct Constants {
    /** Per-op: constant the op provably leaves in its dst (set for
     *  already-Const ops too; passes skip those when rewriting). */
    std::vector<std::optional<uint32_t>> result;
    /** Terminator folding: a Branch whose condition is a known
     *  constant, resolved to its sole target. */
    std::optional<uint32_t> branchTarget;
};

Constants computeConstants(const dbt::TranslationBlock &tb);

/** Concrete semantics of a pure binary op — identical to the
 *  engine's and the fast executor's concrete paths. */
uint32_t foldBinary(dbt::UOp op, uint32_t a, uint32_t b);

/** Concrete semantics of Not/Neg. */
uint32_t foldUnary(dbt::UOp op, uint32_t a);

} // namespace s2e::analysis

#endif // S2E_ANALYSIS_DATAFLOW_HH
