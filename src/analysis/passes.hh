/**
 * @file
 * Optimization passes over translation blocks.
 *
 * The translator emits naive micro-op sequences: every ALU
 * instruction fully materializes Z/N/C/V with mask/shift/compare
 * chains, the way QEMU's x86 frontend computes eflags. Most of those
 * flag values are overwritten by the next ALU instruction before
 * anything reads them, so both execution backends burn work on them —
 * and the symbolic backend additionally materializes the §5
 * bitfield-heavy expressions for values nobody will ever observe.
 *
 * Three passes, built on the dataflow framework (dataflow.hh) and run
 * by optimizeBlock() before a TB enters the cache:
 *
 *   - constantFold():   rewrite pure ops whose inputs are known
 *                       constants into Const, propagating through
 *                       in-block register/flag writes; a Branch on a
 *                       constant condition becomes a Goto;
 *   - deadFlagElim():   drop SetFlag ops overwritten before any
 *                       GetFlag / terminator use (lazy condition
 *                       codes);
 *   - deadTempElim():   liveness-based removal of pure ops whose
 *                       results are never needed, then temp-id
 *                       compaction.
 *
 * Every pass preserves the TB's architectural semantics: registers,
 * flags, memory, I/O and event ordering are bit-identical with the
 * passes on or off (enforced by the differential suite in
 * test_analysis.cc). The instruction maps (instrPcs/instrOpIndex/
 * marked) are remapped so per-instruction events still fire at the
 * right boundaries.
 */

#ifndef S2E_ANALYSIS_PASSES_HH
#define S2E_ANALYSIS_PASSES_HH

#include <cstddef>

#include "dbt/ir.hh"

namespace s2e::analysis {

/** What the pipeline did to one block. */
struct PassStats {
    size_t opsBefore = 0;
    size_t opsAfter = 0;
    size_t tempsBefore = 0;
    size_t tempsAfter = 0;
    size_t constFolded = 0;   ///< ops rewritten to Const
    size_t branchesFolded = 0;///< Branch -> Goto rewrites
    size_t deadFlagOps = 0;   ///< SetFlag ops removed
    size_t deadTempOps = 0;   ///< pure ops removed
    size_t iterations = 0;    ///< pipeline rounds until fixpoint
};

/** Fold constant-input pure ops; returns number of rewrites. */
size_t constantFold(dbt::TranslationBlock &tb, PassStats *stats = nullptr);

/** Remove SetFlags dead under forward overwrite analysis. */
size_t deadFlagElim(dbt::TranslationBlock &tb, PassStats *stats = nullptr);

/** Remove pure ops with dead results (liveness-based). */
size_t deadTempElim(dbt::TranslationBlock &tb, PassStats *stats = nullptr);

/** Renumber temps densely; updates numTemps. */
void compactTemps(dbt::TranslationBlock &tb);

/**
 * The pipeline: fold + dead-flag + dead-temp to fixpoint, then temp
 * compaction. Never touches empty (decode-fault) blocks.
 */
void optimizeBlock(dbt::TranslationBlock &tb, PassStats *stats = nullptr);

} // namespace s2e::analysis

#endif // S2E_ANALYSIS_PASSES_HH
