/**
 * @file
 * Structural verifier for translated blocks.
 *
 * The translator's output is the contract every executor (the engine's
 * symbolic interpreter, the vanilla fast executor) and every analysis
 * pass relies on. verifyBlock() enforces that contract:
 *
 *   - a non-empty block ends with exactly one terminator, in last
 *     position;
 *   - every temp operand is defined before it is used and all temp
 *     ids are below numTemps;
 *   - register ids are < isa::kNumRegs, flag ids are < kNumFlags;
 *   - Load/Store access sizes are 1, 2 or 4;
 *   - S2Op carries a valid custom opcode and its temp operands obey
 *     the same define-before-use rule;
 *   - the instruction maps (instrPcs / instrOpIndex / marked) are
 *     consistent and instrOpIndex is non-decreasing within ops.
 *
 * The verifier runs after every translation (and again after the
 * optimization pipeline) in debug builds; release builds enable it
 * with the S2E_VERIFY_TB environment toggle (see translator.hh).
 */

#ifndef S2E_ANALYSIS_VERIFIER_HH
#define S2E_ANALYSIS_VERIFIER_HH

#include <string>

#include "dbt/ir.hh"

namespace s2e::analysis {

/** Outcome of a verification run. */
struct VerifyResult {
    bool ok = true;
    /** Index of the offending op (or ops.size() for block-level
     *  violations such as a missing terminator). */
    size_t opIndex = 0;
    std::string error;

    explicit operator bool() const { return ok; }
};

/** Check every structural invariant; first violation wins. */
VerifyResult verifyBlock(const dbt::TranslationBlock &tb);

/** verifyBlock + panic with the op dump on failure. `context` names
 *  the pipeline stage (e.g. "translator output", "after tb-opt"). */
void verifyOrPanic(const dbt::TranslationBlock &tb, const char *context);

} // namespace s2e::analysis

#endif // S2E_ANALYSIS_VERIFIER_HH
