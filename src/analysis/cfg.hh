/**
 * @file
 * Static CFG recovery over gisa images (the REV+ baseline).
 *
 * Recursive-descent disassembly from a set of entry points into a
 * basic-block control-flow graph with dominators. Direct edges (jmp,
 * jcc, call + its return point) are followed; indirect control
 * transfers (jmpr, callr, ret targets, software-interrupt handlers
 * installed at runtime) cannot be resolved statically and are
 * reported in unresolvedIndirects instead.
 *
 * This is exactly the limitation motivating REV+ in paper §6.1.2:
 * code reached only through indirect dispatch — interrupt handlers
 * hung off the runtime-written IVT, jump tables, callbacks — is
 * invisible to static disassembly but discovered by multi-path
 * execution. diffCfg() regenerates that argument as data: the blocks
 * only the dynamic run found.
 */

#ifndef S2E_ANALYSIS_CFG_HH
#define S2E_ANALYSIS_CFG_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "isa/assembler.hh"

namespace s2e::analysis {

/** Statically recovered control-flow graph. */
struct StaticCfg {
    struct Block {
        uint32_t pc = 0;        ///< first instruction address
        uint32_t end = 0;       ///< one past the last instruction byte
        std::vector<uint32_t> instrPcs;
        std::set<uint32_t> successors;
        /** Ends in jmpr/callr/ret/int: some successors are unknown. */
        bool indirectExit = false;
        /** Immediate dominator block pc; the block's own pc for entry
         *  blocks (and unreachable-from-entry corner cases). */
        uint32_t idom = 0;
    };

    std::map<uint32_t, Block> blocks;
    std::vector<uint32_t> entries;
    /** Instruction pcs of unresolved indirect transfers, sorted. */
    std::vector<uint32_t> unresolvedIndirects;
    /** Every statically decoded instruction address. */
    std::set<uint32_t> instrPcs;

    bool
    containsBlock(uint32_t pc) const
    {
        return blocks.count(pc) != 0;
    }

    /** Human-readable report: blocks, edges, indirect-jump sites. */
    std::string toString() const;
};

/**
 * Recover the CFG of the code in [lo, hi) reachable from `entries`.
 * Control transfers leaving the range are treated as external calls
 * (no successor inside). Undecodable bytes end the exploration of
 * that path. Dominators are computed over the result, rooted at a
 * virtual entry fanning into all real entries.
 */
StaticCfg recoverStaticCfg(const isa::Program &program,
                           const std::vector<uint32_t> &entries,
                           uint32_t lo, uint32_t hi);

/** Static-vs-dynamic comparison (the REV+ evaluation artifact). */
struct CfgDiff {
    /** Block pcs discovered by both. */
    std::vector<uint32_t> shared;
    /** Statically recovered, never executed by any explored path. */
    std::vector<uint32_t> staticOnly;
    /** Executed, but unreachable by static recursive descent —
     *  evidence that static disassembly alone is not enough. */
    std::vector<uint32_t> dynamicOnly;

    std::string toString() const;
};

/**
 * Diff a static CFG against the block-start pcs observed by a
 * dynamic (multi-path) run. A dynamic block counts as statically
 * known when its pc falls on any statically decoded instruction
 * (dynamic TBs split blocks at different points than the static
 * partition, so comparing block-start sets directly would report
 * spurious misses).
 */
CfgDiff diffCfg(const StaticCfg &cfg,
                const std::set<uint32_t> &dynamicBlockPcs);

} // namespace s2e::analysis

#endif // S2E_ANALYSIS_CFG_HH
