#include "solver/context.hh"

namespace s2e::solver {

sat::Lit
IncrementalContext::guardFor(ExprRef e, uint64_t *gates_saved)
{
    auto it = guards_.find(e);
    if (it != guards_.end()) {
        if (gates_saved)
            *gates_saved += it->second.gateCost;
        return it->second.lit;
    }
    uint64_t gates_before = blaster_.numGates();
    sat::Lit act = sat::mkLit(sat_.newVar());
    blaster_.assertImplies(act, e);
    Guard g{act, blaster_.numGates() - gates_before};
    guards_.emplace(e, g);
    return g.lit;
}

} // namespace s2e::solver
