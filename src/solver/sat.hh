/**
 * @file
 * CDCL SAT solver: two-watched-literal propagation, VSIDS decision
 * heuristic with an indexed binary heap, first-UIP clause learning,
 * phase saving, Luby restarts and learnt-clause reduction.
 *
 * This is the decision procedure underneath the bitvector bit-blaster
 * (bitblast.hh); together they replace the STP solver the original
 * S2E inherited from KLEE.
 */

#ifndef S2E_SOLVER_SAT_HH
#define S2E_SOLVER_SAT_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "support/stats.hh"

namespace s2e::sat {

using Var = int32_t;
using Lit = int32_t; ///< 2*var + (negated ? 1 : 0)

inline Lit
mkLit(Var v, bool neg = false)
{
    return v * 2 + (neg ? 1 : 0);
}
inline Var
litVar(Lit l)
{
    return l >> 1;
}
inline bool
litNeg(Lit l)
{
    return l & 1;
}
inline Lit
litNot(Lit l)
{
    return l ^ 1;
}

/** Three-valued assignment. */
enum class LBool : int8_t { False = 0, True = 1, Undef = 2 };

inline LBool
lboolFrom(bool b)
{
    return b ? LBool::True : LBool::False;
}
inline LBool
lboolNot(LBool v)
{
    switch (v) {
      case LBool::False: return LBool::True;
      case LBool::True: return LBool::False;
      default: return LBool::Undef;
    }
}

/** Result of a solve() call. */
enum class SatResult { Sat, Unsat, Unknown };

/**
 * Per-call resource budget. Negative fields mean unlimited. The
 * wall-clock deadline is checked inside the CDCL loop every few
 * conflicts (and periodically between decisions), so a runaway query
 * returns Unknown within microseconds of the deadline instead of
 * blocking the whole-system run.
 */
struct QueryBudget {
    int64_t maxConflicts = -1; ///< conflicts allowed in this call
    int64_t maxMicros = -1;    ///< wall-clock budget in microseconds

    bool unlimited() const { return maxConflicts < 0 && maxMicros < 0; }

    /**
     * Budget for a retry pass: every finite limit is multiplied,
     * saturating at INT64_MAX. Saturation matters: a wrapped negative
     * limit would read as "unlimited", silently discarding the budget
     * exactly on the escalation path that exists to bound retries.
     */
    QueryBudget
    escalated(double multiplier) const
    {
        QueryBudget b;
        if (maxConflicts >= 0)
            b.maxConflicts = scaleSaturating(maxConflicts, multiplier);
        if (maxMicros >= 0)
            b.maxMicros = scaleSaturating(maxMicros, multiplier);
        return b;
    }

    static int64_t
    scaleSaturating(int64_t limit, double multiplier)
    {
        constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
        double scaled = static_cast<double>(limit) * multiplier;
        // Casting a double >= 2^63 to int64_t is UB; 2^63 is exactly
        // representable, so `scaled < 2^63` is the safe-cast test (it
        // also rejects NaN, which must saturate rather than wrap).
        if (!(scaled < static_cast<double>(kMax)))
            return kMax;
        int64_t s = static_cast<int64_t>(scaled);
        return s < kMax ? s + 1 : kMax;
    }
};

/**
 * The solver. Variables are created with newVar(); clauses reference
 * them by literal. A solved instance exposes the model via value().
 */
class SatSolver
{
  public:
    SatSolver();
    ~SatSolver();
    SatSolver(const SatSolver &) = delete;
    SatSolver &operator=(const SatSolver &) = delete;

    /** Allocate a fresh variable; returns its index. */
    Var newVar();

    int numVars() const { return static_cast<int>(assigns_.size()); }

    /**
     * Add a clause (disjunction of literals). Returns false if the
     * formula is already trivially unsatisfiable.
     */
    bool addClause(const std::vector<Lit> &lits);
    bool addClause(Lit a) { return addClause(std::vector<Lit>{a}); }
    bool addClause(Lit a, Lit b) { return addClause(std::vector<Lit>{a, b}); }
    bool
    addClause(Lit a, Lit b, Lit c)
    {
        return addClause(std::vector<Lit>{a, b, c});
    }

    /**
     * Solve under the given assumptions and budget. On budget
     * exhaustion returns Unknown; the solver keeps its learnt clauses,
     * so calling solve() again with a larger budget resumes the proof
     * rather than restarting it (retry-with-escalated-budget).
     */
    SatResult solve(const std::vector<Lit> &assumptions,
                    const QueryBudget &budget);

    /** Convenience overload: conflict budget only (<0 = unlimited). */
    SatResult
    solve(const std::vector<Lit> &assumptions = {},
          int64_t maxConflicts = -1)
    {
        return solve(assumptions, QueryBudget{maxConflicts, -1});
    }

    /** Did the last solve() stop on the wall-clock deadline (as
     *  opposed to the conflict budget)? Valid after an Unknown. */
    bool lastStopWasDeadline() const { return lastStopDeadline_; }

    /** Model value of a variable after a Sat result. */
    LBool value(Var v) const { return model_[v]; }
    bool modelTrue(Lit l) const
    {
        LBool v = model_[litVar(l)];
        return litNeg(l) ? v == LBool::False : v == LBool::True;
    }

    /** True once the clause database is known unsatisfiable. */
    bool inConflict() const { return !ok_; }

    /** Invariant check: does the last model satisfy every original
     *  clause? (Debug aid; O(clauses).) */
    bool verifyModel() const;

    uint64_t numConflicts() const { return conflicts_; }
    uint64_t numDecisions() const { return decisions_; }
    uint64_t numPropagations() const { return propagations_; }
    size_t numClauses() const { return clauses_.size(); }
    size_t numLearnts() const { return learnts_.size(); }

  private:
    struct Clause {
        float activity = 0;
        bool learnt = false;
        std::vector<Lit> lits;
    };

    struct Watcher {
        Clause *clause;
        Lit blocker;
    };

    LBool litValue(Lit l) const
    {
        LBool v = assigns_[litVar(l)];
        return litNeg(l) ? lboolNot(v) : v;
    }

    int decisionLevel() const { return static_cast<int>(trailLim_.size()); }

    void attachClause(Clause *c);
    void enqueue(Lit l, Clause *reason);
    Clause *propagate();
    void analyze(Clause *conflict, std::vector<Lit> &out_learnt,
                 int &out_btlevel);
    void cancelUntil(int level);
    Lit pickBranchLit();
    void bumpVarActivity(Var v);
    void bumpClauseActivity(Clause *c);
    void decayActivities();
    void reduceDB();
    static int64_t lubyWindow(uint64_t restarts);

    // Indexed max-heap over variable activity.
    void heapInsert(Var v);
    void heapUpdate(Var v);
    Var heapPopMax();
    bool heapEmpty() const { return heap_.empty(); }
    void heapSiftUp(int i);
    void heapSiftDown(int i);

    bool ok_ = true;
    std::vector<Clause *> clauses_;
    std::vector<Clause *> learnts_;
    std::vector<std::vector<Watcher>> watches_; ///< indexed by Lit
    std::vector<LBool> assigns_;
    std::vector<LBool> model_; ///< snapshot of assigns_ at last Sat
    std::vector<bool> phase_;  ///< saved phases
    std::vector<Clause *> reason_;
    std::vector<int> level_;
    std::vector<Lit> trail_;
    std::vector<int> trailLim_;
    size_t qhead_ = 0;

    std::vector<double> activity_;
    double varInc_ = 1.0;
    double claInc_ = 1.0;
    std::vector<int> heap_;    ///< heap of vars
    std::vector<int> heapPos_; ///< var -> heap index, -1 if absent

    std::vector<uint8_t> seen_; ///< scratch for analyze()

    uint64_t conflicts_ = 0;
    uint64_t decisions_ = 0;
    uint64_t propagations_ = 0;
    bool lastStopDeadline_ = false;
};

} // namespace s2e::sat

#endif // S2E_SOLVER_SAT_HH
