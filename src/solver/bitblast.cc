#include "solver/bitblast.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace s2e::solver {

using expr::Kind;
using sat::litNot;
using sat::mkLit;

BitBlaster::BitBlaster(SatSolver &sat) : sat_(sat)
{
    litTrue_ = mkLit(sat_.newVar());
    sat_.addClause(litTrue_);
}

Lit
BitBlaster::freshLit()
{
    return mkLit(sat_.newVar());
}

Lit
BitBlaster::mkAnd(Lit a, Lit b)
{
    if (isConstLit(a))
        return constLitValue(a) ? b : constLit(false);
    if (isConstLit(b))
        return constLitValue(b) ? a : constLit(false);
    if (a == b)
        return a;
    if (a == litNot(b))
        return constLit(false);
    if (b < a)
        std::swap(a, b);
    GateKey key{0, a, b, 0};
    auto it = gateCache_.find(key);
    if (it != gateCache_.end())
        return it->second;
    Lit out = freshLit();
    gates_++;
    sat_.addClause(litNot(out), a);
    sat_.addClause(litNot(out), b);
    sat_.addClause(out, litNot(a), litNot(b));
    gateCache_[key] = out;
    return out;
}

Lit
BitBlaster::mkOr(Lit a, Lit b)
{
    return litNot(mkAnd(litNot(a), litNot(b)));
}

Lit
BitBlaster::mkXor(Lit a, Lit b)
{
    if (isConstLit(a))
        return constLitValue(a) ? litNot(b) : b;
    if (isConstLit(b))
        return constLitValue(b) ? litNot(a) : a;
    if (a == b)
        return constLit(false);
    if (a == litNot(b))
        return constLit(true);
    // Normalize polarity: cache xor of positive lits.
    bool flip = false;
    if (sat::litNeg(a)) {
        a = litNot(a);
        flip = !flip;
    }
    if (sat::litNeg(b)) {
        b = litNot(b);
        flip = !flip;
    }
    if (b < a)
        std::swap(a, b);
    GateKey key{1, a, b, 0};
    auto it = gateCache_.find(key);
    Lit out;
    if (it != gateCache_.end()) {
        out = it->second;
    } else {
        out = freshLit();
        gates_++;
        sat_.addClause(litNot(out), a, b);
        sat_.addClause(litNot(out), litNot(a), litNot(b));
        sat_.addClause(out, litNot(a), b);
        sat_.addClause(out, a, litNot(b));
        gateCache_[key] = out;
    }
    return flip ? litNot(out) : out;
}

Lit
BitBlaster::mkMux(Lit c, Lit t, Lit f)
{
    if (isConstLit(c))
        return constLitValue(c) ? t : f;
    if (t == f)
        return t;
    if (isConstLit(t) && isConstLit(f))
        return constLitValue(t) ? c : litNot(c);
    // c ? !f : f  ==  c XOR f
    if (t == litNot(f))
        return mkXor(c, f);
    GateKey key{2, c, t, f};
    auto it = gateCache_.find(key);
    if (it != gateCache_.end())
        return it->second;
    Lit out = freshLit();
    gates_++;
    sat_.addClause(litNot(c), litNot(t), out);
    sat_.addClause(litNot(c), t, litNot(out));
    sat_.addClause(c, litNot(f), out);
    sat_.addClause(c, f, litNot(out));
    gateCache_[key] = out;
    return out;
}

Lit
BitBlaster::mkMaj(Lit a, Lit b, Lit c)
{
    // majority(a,b,c) = ab | ac | bc
    return mkOr(mkAnd(a, b), mkOr(mkAnd(a, c), mkAnd(b, c)));
}

std::vector<Lit>
BitBlaster::addBits(const std::vector<Lit> &a, const std::vector<Lit> &b,
                    Lit carry_in)
{
    S2E_ASSERT(a.size() == b.size(), "adder width mismatch");
    std::vector<Lit> out(a.size());
    Lit carry = carry_in;
    for (size_t i = 0; i < a.size(); ++i) {
        Lit axb = mkXor(a[i], b[i]);
        out[i] = mkXor(axb, carry);
        if (i + 1 < a.size())
            carry = mkMaj(a[i], b[i], carry);
    }
    return out;
}

std::vector<Lit>
BitBlaster::negBits(const std::vector<Lit> &a)
{
    std::vector<Lit> zeros(a.size(), constLit(false));
    std::vector<Lit> na(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        na[i] = litNot(a[i]);
    return addBits(na, zeros, constLit(true));
}

std::vector<Lit>
BitBlaster::mulBits(const std::vector<Lit> &a, const std::vector<Lit> &b)
{
    size_t w = a.size();
    std::vector<Lit> acc(w, constLit(false));
    for (size_t i = 0; i < w; ++i) {
        // addend = (a << i) & b[i]
        std::vector<Lit> addend(w, constLit(false));
        bool all_false = true;
        for (size_t j = i; j < w; ++j) {
            addend[j] = mkAnd(a[j - i], b[i]);
            if (!(isConstLit(addend[j]) && !constLitValue(addend[j])))
                all_false = false;
        }
        if (!all_false)
            acc = addBits(acc, addend, constLit(false));
    }
    return acc;
}

void
BitBlaster::divremBits(const std::vector<Lit> &a, const std::vector<Lit> &b,
                       std::vector<Lit> &quot, std::vector<Lit> &rem)
{
    // Restoring long division with a (w+1)-bit partial remainder.
    size_t w = a.size();
    std::vector<Lit> bx(b);
    bx.push_back(constLit(false)); // zext divisor to w+1
    std::vector<Lit> r(w + 1, constLit(false));
    quot.assign(w, constLit(false));
    for (size_t step = 0; step < w; ++step) {
        size_t bit = w - 1 - step;
        // r = (r << 1) | a[bit]
        for (size_t i = w; i > 0; --i)
            r[i] = r[i - 1];
        r[0] = a[bit];
        // ge = (r >= bx)  <=>  !(r < bx)
        Lit ge = litNot(ultBits(r, bx));
        // r = ge ? r - bx : r
        std::vector<Lit> diff = addBits(r, negBits(bx), constLit(false));
        r = muxBits(ge, diff, r);
        quot[bit] = ge;
    }
    rem.assign(r.begin(), r.begin() + w);
}

std::vector<Lit>
BitBlaster::muxBits(Lit c, const std::vector<Lit> &t,
                    const std::vector<Lit> &f)
{
    S2E_ASSERT(t.size() == f.size(), "mux width mismatch");
    std::vector<Lit> out(t.size());
    for (size_t i = 0; i < t.size(); ++i)
        out[i] = mkMux(c, t[i], f[i]);
    return out;
}

std::vector<Lit>
BitBlaster::shiftBits(const std::vector<Lit> &a,
                      const std::vector<Lit> &amount, expr::Kind kind)
{
    size_t w = a.size();
    Lit fill = constLit(false);
    if (kind == Kind::AShr)
        fill = a[w - 1];

    // Barrel shifter over the low log2 stages; any higher amount bit
    // set means full shift-out.
    std::vector<Lit> cur(a);
    size_t stages = 0;
    while ((1ULL << stages) < w)
        stages++;
    for (size_t s = 0; s < stages; ++s) {
        size_t k = 1ULL << s;
        std::vector<Lit> shifted(w, fill);
        for (size_t i = 0; i < w; ++i) {
            if (kind == Kind::Shl) {
                if (i >= k)
                    shifted[i] = cur[i - k];
            } else {
                if (i + k < w)
                    shifted[i] = cur[i + k];
            }
        }
        cur = muxBits(amount[s], shifted, cur);
    }
    // Overflow: any amount bit >= stages set, or amount within the low
    // stage bits encoding a value >= w (only when w is not a power of
    // two; with power-of-two widths the stage bits cover exactly < w).
    Lit overflow = constLit(false);
    for (size_t i = stages; i < amount.size(); ++i)
        overflow = mkOr(overflow, amount[i]);
    if ((1ULL << stages) != w) {
        // Compare low stage bits against w.
        std::vector<Lit> low(amount.begin(), amount.begin() + stages);
        std::vector<Lit> wconst(stages);
        for (size_t i = 0; i < stages; ++i)
            wconst[i] = constLit((w >> i) & 1);
        overflow = mkOr(overflow, litNot(ultBits(low, wconst)));
    }
    std::vector<Lit> fullshift(w, fill);
    return muxBits(overflow, fullshift, cur);
}

Lit
BitBlaster::ultBits(const std::vector<Lit> &a, const std::vector<Lit> &b)
{
    S2E_ASSERT(a.size() == b.size(), "ult width mismatch");
    Lit lt = constLit(false);
    for (size_t i = 0; i < a.size(); ++i) {
        // Higher bits take priority; process LSB -> MSB so the last
        // (most significant) difference wins.
        Lit diff = mkXor(a[i], b[i]);
        Lit bi_gt = mkAnd(litNot(a[i]), b[i]);
        lt = mkMux(diff, bi_gt, lt);
    }
    return lt;
}

Lit
BitBlaster::eqBits(const std::vector<Lit> &a, const std::vector<Lit> &b)
{
    S2E_ASSERT(a.size() == b.size(), "eq width mismatch");
    Lit out = constLit(true);
    for (size_t i = 0; i < a.size(); ++i)
        out = mkAnd(out, litNot(mkXor(a[i], b[i])));
    return out;
}

const std::vector<Lit> &
BitBlaster::blast(ExprRef e)
{
    return blastRec(e);
}

const std::vector<Lit> &
BitBlaster::blastRec(ExprRef e)
{
    auto it = cache_.find(e);
    if (it != cache_.end())
        return it->second;

    unsigned w = e->width();
    std::vector<Lit> out;

    switch (e->kind()) {
      case Kind::Constant: {
        out.resize(w);
        for (unsigned i = 0; i < w; ++i)
            out[i] = constLit((e->value() >> i) & 1);
        break;
      }
      case Kind::Variable: {
        auto vit = varBits_.find(e->varId());
        if (vit == varBits_.end()) {
            std::vector<Lit> bits(w);
            for (unsigned i = 0; i < w; ++i)
                bits[i] = freshLit();
            vit = varBits_.emplace(e->varId(), std::move(bits)).first;
        }
        out = vit->second;
        break;
      }
      case Kind::Add: {
        out = addBits(blastRec(e->kid(0)), blastRec(e->kid(1)),
                      constLit(false));
        break;
      }
      case Kind::Sub: {
        std::vector<Lit> nb;
        const auto &b = blastRec(e->kid(1));
        nb.resize(b.size());
        for (size_t i = 0; i < b.size(); ++i)
            nb[i] = litNot(b[i]);
        out = addBits(blastRec(e->kid(0)), nb, constLit(true));
        break;
      }
      case Kind::Mul:
        out = mulBits(blastRec(e->kid(0)), blastRec(e->kid(1)));
        break;
      case Kind::UDiv:
      case Kind::URem: {
        std::vector<Lit> q, r;
        divremBits(blastRec(e->kid(0)), blastRec(e->kid(1)), q, r);
        out = (e->kind() == Kind::UDiv) ? q : r;
        break;
      }
      case Kind::SDiv:
      case Kind::SRem: {
        const auto &a = blastRec(e->kid(0));
        const auto &b = blastRec(e->kid(1));
        Lit sa = a[w - 1], sb = b[w - 1];
        std::vector<Lit> ua = muxBits(sa, negBits(a), a);
        std::vector<Lit> ub = muxBits(sb, negBits(b), b);
        std::vector<Lit> q, r;
        divremBits(ua, ub, q, r);
        if (e->kind() == Kind::SDiv) {
            Lit flip = mkXor(sa, sb);
            out = muxBits(flip, negBits(q), q);
            // Divide-by-zero is a total function yielding all-ones,
            // matching ExprBuilder::foldBinary semantics.
            std::vector<Lit> zero(w, constLit(false));
            Lit b_zero = eqBits(b, zero);
            std::vector<Lit> ones(w, constLit(true));
            out = muxBits(b_zero, ones, out);
        } else {
            out = muxBits(sa, negBits(r), r);
        }
        break;
      }
      case Kind::And:
      case Kind::Or:
      case Kind::Xor: {
        const auto &a = blastRec(e->kid(0));
        const auto &b = blastRec(e->kid(1));
        out.resize(w);
        for (unsigned i = 0; i < w; ++i) {
            switch (e->kind()) {
              case Kind::And: out[i] = mkAnd(a[i], b[i]); break;
              case Kind::Or: out[i] = mkOr(a[i], b[i]); break;
              default: out[i] = mkXor(a[i], b[i]); break;
            }
        }
        break;
      }
      case Kind::Not: {
        const auto &a = blastRec(e->kid(0));
        out.resize(w);
        for (unsigned i = 0; i < w; ++i)
            out[i] = litNot(a[i]);
        break;
      }
      case Kind::Neg:
        out = negBits(blastRec(e->kid(0)));
        break;
      case Kind::Shl:
      case Kind::LShr:
      case Kind::AShr: {
        ExprRef amt = e->kid(1);
        const auto a = blastRec(e->kid(0));
        if (amt->isConstant()) {
            uint64_t s = amt->value();
            out.assign(w, e->kind() == Kind::AShr ? a[w - 1]
                                                  : constLit(false));
            if (s < w) {
                for (unsigned i = 0; i < w; ++i) {
                    if (e->kind() == Kind::Shl) {
                        if (i >= s)
                            out[i] = a[i - s];
                    } else {
                        if (i + s < w)
                            out[i] = a[i + s];
                    }
                }
            }
        } else {
            out = shiftBits(a, blastRec(amt), e->kind());
        }
        break;
      }
      case Kind::Concat: {
        const auto &hi = blastRec(e->kid(0));
        const auto &lo = blastRec(e->kid(1));
        out = lo;
        out.insert(out.end(), hi.begin(), hi.end());
        break;
      }
      case Kind::Extract: {
        const auto &a = blastRec(e->kid(0));
        out.assign(a.begin() + e->aux(), a.begin() + e->aux() + w);
        break;
      }
      case Kind::ZExt: {
        out = blastRec(e->kid(0));
        out.resize(w, constLit(false));
        break;
      }
      case Kind::SExt: {
        out = blastRec(e->kid(0));
        Lit sign = out.back();
        out.resize(w, sign);
        break;
      }
      case Kind::Eq:
        out = {eqBits(blastRec(e->kid(0)), blastRec(e->kid(1)))};
        break;
      case Kind::Ult:
        out = {ultBits(blastRec(e->kid(0)), blastRec(e->kid(1)))};
        break;
      case Kind::Ule:
        out = {litNot(ultBits(blastRec(e->kid(1)), blastRec(e->kid(0))))};
        break;
      case Kind::Slt:
      case Kind::Sle: {
        // Signed compare == unsigned compare with inverted sign bits.
        std::vector<Lit> a = blastRec(e->kid(0));
        std::vector<Lit> b = blastRec(e->kid(1));
        a.back() = litNot(a.back());
        b.back() = litNot(b.back());
        if (e->kind() == Kind::Slt)
            out = {ultBits(a, b)};
        else
            out = {litNot(ultBits(b, a))};
        break;
      }
      case Kind::Ite: {
        Lit c = blastBool(e->kid(0));
        out = muxBits(c, blastRec(e->kid(1)), blastRec(e->kid(2)));
        break;
      }
    }

    S2E_ASSERT(out.size() == w, "blast width mismatch for %s",
               expr::kindName(e->kind()));
    return cache_.emplace(e, std::move(out)).first->second;
}

Lit
BitBlaster::blastBool(ExprRef e)
{
    S2E_ASSERT(e->width() == 1, "blastBool on width-%u expr", e->width());
    return blastRec(e)[0];
}

void
BitBlaster::assertTrue(ExprRef e)
{
    sat_.addClause(blastBool(e));
}

void
BitBlaster::assertImplies(Lit guard, ExprRef e)
{
    // Blast first: gate clauses must reference only unconditional
    // Tseitin definitions, never the guard. If e lowers to constant
    // true the clause is satisfied at the root and addClause drops it;
    // constant false leaves the unit ¬guard, permanently disabling
    // this activation literal (any query assuming it is Unsat).
    Lit lit = blastBool(e);
    sat_.addClause(sat::litNot(guard), lit);
}

uint64_t
BitBlaster::modelValue(ExprRef var) const
{
    S2E_ASSERT(var->isVariable(), "modelValue on non-variable");
    auto it = varBits_.find(var->varId());
    if (it == varBits_.end())
        return 0; // variable unconstrained by the query
    uint64_t v = 0;
    for (size_t i = 0; i < it->second.size(); ++i)
        if (sat_.modelTrue(it->second[i]))
            v |= 1ULL << i;
    return v;
}

} // namespace s2e::solver
