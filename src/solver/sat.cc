#include "solver/sat.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "support/logging.hh"

namespace s2e::sat {

SatSolver::SatSolver() = default;

SatSolver::~SatSolver()
{
    for (Clause *c : clauses_)
        delete c;
    for (Clause *c : learnts_)
        delete c;
}

Var
SatSolver::newVar()
{
    Var v = static_cast<Var>(assigns_.size());
    assigns_.push_back(LBool::Undef);
    phase_.push_back(false);
    reason_.push_back(nullptr);
    level_.push_back(0);
    activity_.push_back(0.0);
    seen_.push_back(0);
    heapPos_.push_back(-1);
    watches_.emplace_back();
    watches_.emplace_back();
    heapInsert(v);
    return v;
}

bool
SatSolver::addClause(const std::vector<Lit> &lits_in)
{
    S2E_ASSERT(decisionLevel() == 0, "addClause above root level");
    if (!ok_)
        return false;

    // Sort, dedupe, drop false literals, detect tautologies and
    // satisfied clauses.
    std::vector<Lit> lits(lits_in);
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> out;
    Lit prev = -1;
    for (Lit l : lits) {
        S2E_ASSERT(litVar(l) < numVars(), "clause uses unknown var");
        if (l == prev)
            continue;
        if (prev >= 0 && l == litNot(prev))
            return true; // tautology: x | !x
        LBool v = litValue(l);
        if (v == LBool::True)
            return true; // already satisfied at root
        if (v == LBool::False)
            continue; // root-false literal: drop
        out.push_back(l);
        prev = l;
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        enqueue(out[0], nullptr);
        if (propagate() != nullptr) {
            ok_ = false;
            return false;
        }
        return true;
    }

    Clause *c = new Clause();
    c->lits = std::move(out);
    clauses_.push_back(c);
    attachClause(c);
    return true;
}

void
SatSolver::attachClause(Clause *c)
{
    S2E_ASSERT(c->lits.size() >= 2, "attach of short clause");
    watches_[litNot(c->lits[0])].push_back({c, c->lits[1]});
    watches_[litNot(c->lits[1])].push_back({c, c->lits[0]});
}

void
SatSolver::enqueue(Lit l, Clause *reason)
{
    Var v = litVar(l);
    S2E_ASSERT(assigns_[v] == LBool::Undef, "enqueue of assigned var");
    assigns_[v] = lboolFrom(!litNeg(l));
    phase_[v] = !litNeg(l);
    reason_[v] = reason;
    level_[v] = decisionLevel();
    trail_.push_back(l);
}

SatSolver::Clause *
SatSolver::propagate()
{
    while (qhead_ < trail_.size()) {
        Lit p = trail_[qhead_++];
        propagations_++;
        std::vector<Watcher> &ws = watches_[p];
        size_t i = 0, j = 0;
        while (i < ws.size()) {
            Watcher w = ws[i];
            if (litValue(w.blocker) == LBool::True) {
                ws[j++] = ws[i++];
                continue;
            }
            Clause *c = w.clause;
            std::vector<Lit> &lits = c->lits;
            // Normalize so lits[0] is the other watched literal.
            Lit not_p = litNot(p);
            if (lits[0] == not_p)
                std::swap(lits[0], lits[1]);
            S2E_ASSERT(lits[1] == not_p, "watch invariant broken");
            Lit first = lits[0];
            if (first != w.blocker && litValue(first) == LBool::True) {
                ws[j++] = {c, first};
                i++;
                continue;
            }
            // Look for a new literal to watch.
            bool moved = false;
            for (size_t k = 2; k < lits.size(); ++k) {
                if (litValue(lits[k]) != LBool::False) {
                    std::swap(lits[1], lits[k]);
                    watches_[litNot(lits[1])].push_back({c, first});
                    moved = true;
                    break;
                }
            }
            if (moved) {
                i++;
                continue;
            }
            // Clause is unit or conflicting.
            ws[j++] = {c, first};
            i++;
            if (litValue(first) == LBool::False) {
                // Conflict: copy remaining watchers and bail.
                while (i < ws.size())
                    ws[j++] = ws[i++];
                ws.resize(j);
                qhead_ = trail_.size();
                return c;
            }
            enqueue(first, c);
        }
        ws.resize(j);
    }
    return nullptr;
}

void
SatSolver::analyze(Clause *conflict, std::vector<Lit> &out_learnt,
                   int &out_btlevel)
{
    out_learnt.clear();
    out_learnt.push_back(0); // placeholder for the asserting literal
    int path_count = 0;
    Lit p = -1;
    size_t index = trail_.size();

    Clause *c = conflict;
    do {
        S2E_ASSERT(c != nullptr, "analyze hit a decision without reason");
        bumpClauseActivity(c);
        for (Lit q : c->lits) {
            if (q == p)
                continue;
            Var v = litVar(q);
            if (!seen_[v] && level_[v] > 0) {
                seen_[v] = 1;
                bumpVarActivity(v);
                if (level_[v] >= decisionLevel())
                    path_count++;
                else
                    out_learnt.push_back(q);
            }
        }
        // Select next literal on the trail to expand.
        while (!seen_[litVar(trail_[index - 1])])
            index--;
        index--;
        p = trail_[index];
        c = reason_[litVar(p)];
        seen_[litVar(p)] = 0;
        path_count--;
    } while (path_count > 0);
    out_learnt[0] = litNot(p);

    // Clause minimization: drop literals implied by the rest.
    // (Light-weight local check: a literal whose reason's literals are
    // all already in the clause or at level 0 is redundant.)
    auto redundant = [&](Lit l) {
        Clause *r = reason_[litVar(l)];
        if (!r)
            return false;
        for (Lit q : r->lits) {
            Var v = litVar(q);
            if (v == litVar(l))
                continue;
            if (level_[v] > 0 && !seen_[v])
                return false;
        }
        return true;
    };
    // Mark for the redundancy check; remember every marked variable
    // so the scratch flags are fully cleared afterwards (stale flags
    // would corrupt later conflict analyses).
    std::vector<Var> marked;
    marked.reserve(out_learnt.size());
    for (Lit l : out_learnt) {
        seen_[litVar(l)] = 1;
        marked.push_back(litVar(l));
    }
    size_t w = 1;
    for (size_t r = 1; r < out_learnt.size(); ++r) {
        if (!redundant(out_learnt[r]))
            out_learnt[w++] = out_learnt[r];
    }
    for (Var v : marked)
        seen_[v] = 0;
    out_learnt.resize(w);

    // Compute backtrack level: highest level among lits[1..].
    out_btlevel = 0;
    if (out_learnt.size() > 1) {
        size_t max_i = 1;
        for (size_t k = 2; k < out_learnt.size(); ++k)
            if (level_[litVar(out_learnt[k])] >
                level_[litVar(out_learnt[max_i])])
                max_i = k;
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = level_[litVar(out_learnt[1])];
    }
}

void
SatSolver::cancelUntil(int lvl)
{
    if (decisionLevel() <= lvl)
        return;
    for (size_t i = trail_.size(); i > static_cast<size_t>(trailLim_[lvl]);
         --i) {
        Var v = litVar(trail_[i - 1]);
        assigns_[v] = LBool::Undef;
        reason_[v] = nullptr;
        if (heapPos_[v] < 0)
            heapInsert(v);
    }
    trail_.resize(trailLim_[lvl]);
    trailLim_.resize(lvl);
    qhead_ = trail_.size();
}

Lit
SatSolver::pickBranchLit()
{
    while (!heapEmpty()) {
        Var v = heapPopMax();
        if (assigns_[v] == LBool::Undef)
            return mkLit(v, !phase_[v]);
    }
    return -1;
}

void
SatSolver::bumpVarActivity(Var v)
{
    activity_[v] += varInc_;
    if (activity_[v] > 1e100) {
        for (auto &a : activity_)
            a *= 1e-100;
        varInc_ *= 1e-100;
    }
    if (heapPos_[v] >= 0)
        heapUpdate(v);
}

void
SatSolver::bumpClauseActivity(Clause *c)
{
    if (!c->learnt)
        return;
    c->activity += static_cast<float>(claInc_);
    if (c->activity > 1e20f) {
        for (Clause *lc : learnts_)
            lc->activity *= 1e-20f;
        claInc_ *= 1e-20;
    }
}

void
SatSolver::decayActivities()
{
    varInc_ /= 0.95;
    claInc_ /= 0.999;
}

void
SatSolver::reduceDB()
{
    // Remove the least active half of the learnt clauses, keeping
    // clauses that are currently reasons.
    std::vector<Clause *> keep;
    std::vector<Clause *> sorted = learnts_;
    std::sort(sorted.begin(), sorted.end(),
              [](Clause *a, Clause *b) { return a->activity > b->activity; });
    std::vector<bool> locked_set;
    auto isLocked = [&](Clause *c) {
        Lit first = c->lits[0];
        return litValue(first) == LBool::True &&
               reason_[litVar(first)] == c;
    };
    size_t limit = sorted.size() / 2;
    for (size_t i = 0; i < sorted.size(); ++i) {
        Clause *c = sorted[i];
        if (i < limit || isLocked(c) || c->lits.size() == 2) {
            keep.push_back(c);
        } else {
            // Detach from watch lists.
            for (int k = 0; k < 2; ++k) {
                auto &ws = watches_[litNot(c->lits[k])];
                for (size_t x = 0; x < ws.size(); ++x) {
                    if (ws[x].clause == c) {
                        ws[x] = ws.back();
                        ws.pop_back();
                        break;
                    }
                }
            }
            delete c;
        }
    }
    learnts_ = std::move(keep);
}

bool
SatSolver::verifyModel() const
{
    for (const Clause *c : clauses_) {
        bool any = false;
        for (Lit l : c->lits)
            if (modelTrue(l))
                any = true;
        if (!any)
            return false;
    }
    return true;
}

int64_t
SatSolver::lubyWindow(uint64_t restarts)
{
    // Luby sequence via Knuth's reluctant-doubling pair, scaled by a
    // base window of 128 conflicts.
    uint64_t u = 1, v = 1;
    for (uint64_t i = 0; i < restarts; ++i) {
        if ((u & (~u + 1)) == v) {
            u++;
            v = 1;
        } else {
            v <<= 1;
        }
    }
    return static_cast<int64_t>(v) * 128;
}

SatResult
SatSolver::solve(const std::vector<Lit> &assumptions,
                 const QueryBudget &budget)
{
    lastStopDeadline_ = false;
    if (!ok_)
        return SatResult::Unsat;
    cancelUntil(0);

    uint64_t restarts = 0;
    int64_t restart_budget = lubyWindow(restarts);
    uint64_t conflicts_this_call = 0;
    uint64_t decisions_this_call = 0;
    size_t learnt_cap = clauses_.size() / 2 + 1000;

    // Wall-clock deadline, checked every few conflicts (and
    // periodically between decisions, for instances that propagate for
    // a long time without conflicting).
    const bool has_deadline = budget.maxMicros >= 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(has_deadline ? budget.maxMicros : 0);
    constexpr uint64_t kConflictCheckMask = 0x3;   // every 4 conflicts
    constexpr uint64_t kDecisionCheckMask = 0xFF;  // every 256 decisions
    auto deadline_hit = [&] {
        return has_deadline &&
               std::chrono::steady_clock::now() >= deadline;
    };

    for (;;) {
        Clause *conflict = propagate();
        if (conflict != nullptr) {
            conflicts_++;
            conflicts_this_call++;
            restart_budget--;
            if (decisionLevel() == 0) {
                ok_ = false;
                return SatResult::Unsat;
            }
            std::vector<Lit> learnt;
            int bt_level = 0;
            analyze(conflict, learnt, bt_level);
            cancelUntil(bt_level);
            if (learnt.size() == 1) {
                enqueue(learnt[0], nullptr);
            } else {
                Clause *c = new Clause();
                c->learnt = true;
                c->lits = learnt;
                learnts_.push_back(c);
                attachClause(c);
                bumpClauseActivity(c);
                enqueue(learnt[0], c);
            }
            decayActivities();
            if (budget.maxConflicts >= 0 &&
                conflicts_this_call >
                    static_cast<uint64_t>(budget.maxConflicts)) {
                cancelUntil(0);
                return SatResult::Unknown;
            }
            if ((conflicts_this_call & kConflictCheckMask) == 0 &&
                deadline_hit()) {
                lastStopDeadline_ = true;
                cancelUntil(0);
                return SatResult::Unknown;
            }
            continue;
        }

        if (restart_budget <= 0) {
            restarts++;
            restart_budget = lubyWindow(restarts);
            cancelUntil(0);
            continue;
        }
        if (learnts_.size() > learnt_cap) {
            reduceDB();
            learnt_cap += learnt_cap / 2;
        }

        // Apply assumptions as pseudo-decisions in order.
        if (static_cast<size_t>(decisionLevel()) < assumptions.size()) {
            Lit a = assumptions[decisionLevel()];
            LBool v = litValue(a);
            if (v == LBool::True) {
                trailLim_.push_back(static_cast<int>(trail_.size()));
                continue;
            }
            if (v == LBool::False) {
                // Assumptions conflict with the formula.
                cancelUntil(0);
                return SatResult::Unsat;
            }
            trailLim_.push_back(static_cast<int>(trail_.size()));
            enqueue(a, nullptr);
            continue;
        }

        Lit next = pickBranchLit();
        if (next < 0) {
            // Full satisfying assignment: snapshot it as the model and
            // restore the solver to root level so more clauses can be
            // added afterwards.
            model_ = assigns_;
            cancelUntil(0);
            return SatResult::Sat;
        }
        decisions_++;
        if ((++decisions_this_call & kDecisionCheckMask) == 0 &&
            deadline_hit()) {
            lastStopDeadline_ = true;
            cancelUntil(0);
            return SatResult::Unknown;
        }
        trailLim_.push_back(static_cast<int>(trail_.size()));
        enqueue(next, nullptr);
    }
}

// --- Indexed binary max-heap over activity ---------------------------

void
SatSolver::heapInsert(Var v)
{
    heapPos_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    heapSiftUp(heapPos_[v]);
}

void
SatSolver::heapUpdate(Var v)
{
    heapSiftUp(heapPos_[v]);
}

Var
SatSolver::heapPopMax()
{
    Var top = heap_[0];
    heapPos_[top] = -1;
    Var last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        heapPos_[last] = 0;
        heapSiftDown(0);
    }
    return top;
}

void
SatSolver::heapSiftUp(int i)
{
    Var v = heap_[i];
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (activity_[heap_[parent]] >= activity_[v])
            break;
        heap_[i] = heap_[parent];
        heapPos_[heap_[i]] = i;
        i = parent;
    }
    heap_[i] = v;
    heapPos_[v] = i;
}

void
SatSolver::heapSiftDown(int i)
{
    Var v = heap_[i];
    int n = static_cast<int>(heap_.size());
    for (;;) {
        int child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n &&
            activity_[heap_[child + 1]] > activity_[heap_[child]])
            child++;
        if (activity_[heap_[child]] <= activity_[v])
            break;
        heap_[i] = heap_[child];
        heapPos_[heap_[i]] = i;
        i = child;
    }
    heap_[i] = v;
    heapPos_[v] = i;
}

} // namespace s2e::sat
