#include "solver/service.hh"

#include <algorithm>
#include <chrono>

#include "solver/context.hh"
#include "support/logging.hh"

namespace s2e::solver {

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Batch grouping key: sibling states forked from one path share
 *  their oldest constraint, and constraints are hash-consed, so the
 *  first constraint's identity is a cheap shared-prefix witness. */
ExprRef
prefixKey(const AsyncQuery *q)
{
    return q->constraints->empty() ? nullptr : q->constraints->front();
}

} // namespace

// --- SpscRing -----------------------------------------------------------

SpscRing::SpscRing(size_t capacity)
{
    size_t cap = 1;
    while (cap < capacity)
        cap <<= 1;
    slots_.resize(cap, nullptr);
    mask_ = cap - 1;
}

bool
SpscRing::push(AsyncQuery *q)
{
    size_t tail = tail_.load(std::memory_order_relaxed);
    size_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_)
        return false; // full
    slots_[tail & mask_] = q;
    // Release publishes the slot write *and* everything the suspended
    // state wrote before parking.
    tail_.store(tail + 1, std::memory_order_release);
    return true;
}

AsyncQuery *
SpscRing::pop()
{
    size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire))
        return nullptr; // empty
    AsyncQuery *q = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return q;
}

size_t
SpscRing::size() const
{
    size_t tail = tail_.load(std::memory_order_relaxed);
    size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
}

// --- SolverService ------------------------------------------------------

/** Everything one service thread owns: its solver (stateful, never
 *  shared) and the persistent context sibling batches share. */
struct SolverService::Lane {
    Lane(expr::ExprBuilder &builder, const SolverOptions &opts)
        : solver(builder, opts)
    {
    }

    Solver solver;
    /** Shared incremental context for grouped queries. Guarded
     *  constraints from many paths coexist soundly (activation
     *  literals); the Solver evicts it like any path context when it
     *  outgrows the gate/clause high-water marks. */
    std::shared_ptr<IncrementalContext> batchSlot;
    std::thread thread;
    ServiceStats stats;
};

SolverService::SolverService(expr::ExprBuilder &builder,
                             const SolverOptions &opts, const Config &cfg,
                             CompletionFn complete)
    : builder_(builder), opts_(opts), cfg_(cfg),
      complete_(std::move(complete))
{
    S2E_ASSERT(cfg_.threads >= 1, "solver service needs >= 1 thread");
    S2E_ASSERT(cfg_.workers >= 1, "solver service needs >= 1 producer");
    S2E_ASSERT(complete_, "solver service needs a completion callback");
    for (unsigned w = 0; w < cfg_.workers; ++w)
        rings_.push_back(std::make_unique<SpscRing>(cfg_.queueCapacity));
    for (unsigned t = 0; t < cfg_.threads; ++t)
        lanes_.push_back(std::make_unique<Lane>(builder_, opts_));
}

SolverService::~SolverService()
{
    stop();
}

void
SolverService::start()
{
    S2E_ASSERT(!started_, "solver service started twice");
    started_ = true;
    for (unsigned t = 0; t < cfg_.threads; ++t)
        lanes_[t]->thread = std::thread([this, t] { threadMain(t); });
}

void
SolverService::stop()
{
    if (!started_ || joined_)
        return;
    stopping_.store(true, std::memory_order_seq_cst);
    {
        std::lock_guard<std::mutex> lock(waitMu_);
        cv_.notify_all();
    }
    for (auto &lane : lanes_)
        if (lane->thread.joinable())
            lane->thread.join();
    joined_ = true;
    for (auto &lane : lanes_) {
        stats_.queriesServed += lane->stats.queriesServed;
        stats_.batchedQueries += lane->stats.batchedQueries;
        stats_.batches += lane->stats.batches;
        stats_.queueDepthPeak =
            std::max(stats_.queueDepthPeak, lane->stats.queueDepthPeak);
        stats_.busySeconds += lane->stats.busySeconds;
        stats_.overlapSeconds += lane->stats.overlapSeconds;
    }
}

bool
SolverService::submit(unsigned worker, AsyncQuery *q)
{
    S2E_ASSERT(worker < rings_.size(), "submit from unknown worker");
    if (!rings_[worker]->push(q))
        return false;
    // Same lost-wakeup-free ordering as WorkQueue::pushBack: publish
    // the push to the sleep predicate, then check for sleepers.
    submitEpoch_.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
        std::lock_guard<std::mutex> lock(waitMu_);
        // Rings are partitioned across lanes, so the sleeper this
        // push is for might not be the one notify_one would pick.
        cv_.notify_all();
    }
    return true;
}

std::vector<Solver *>
SolverService::solvers()
{
    std::vector<Solver *> out;
    for (auto &lane : lanes_)
        out.push_back(&lane->solver);
    return out;
}

void
SolverService::executeOn(Solver &solver, AsyncQuery &q)
{
    switch (q.kind) {
      case AsyncQuery::Kind::CheckBranch:
        q.branch = solver.checkBranch(*q.constraints, q.expr);
        break;
      case AsyncQuery::Kind::GetValue:
        q.outcome = solver.getValue(*q.constraints, q.expr, &q.value);
        break;
      case AsyncQuery::Kind::MayBeTrue:
        q.outcome = solver.mayBeTrue(*q.constraints, q.expr);
        break;
      case AsyncQuery::Kind::MustBeTrue:
        q.outcome = solver.mustBeTrue(*q.constraints, q.expr);
        break;
      case AsyncQuery::Kind::GetRange:
        q.outcome = solver.getRange(*q.constraints, q.expr, &q.lo, &q.hi);
        break;
    }
}

size_t
SolverService::drain(unsigned lane_id, std::vector<AsyncQuery *> &out)
{
    // Rings are statically partitioned: worker w belongs to lane
    // w % threads, so each ring keeps exactly one consumer.
    uint64_t depth = 0;
    for (size_t w = lane_id; w < rings_.size(); w += cfg_.threads)
        depth += rings_[w]->size();
    Lane &lane = *lanes_[lane_id];
    lane.stats.queueDepthPeak =
        std::max(lane.stats.queueDepthPeak, depth);
    for (size_t w = lane_id;
         w < rings_.size() && out.size() < cfg_.batchMax;
         w += cfg_.threads) {
        while (out.size() < cfg_.batchMax) {
            AsyncQuery *q = rings_[w]->pop();
            if (!q)
                break;
            out.push_back(q);
        }
    }
    return out.size();
}

void
SolverService::runBatch(Lane &lane, std::vector<AsyncQuery *> &batch)
{
    // Adjacent grouping by shared constraint prefix. stable_sort keeps
    // same-key queries in submission order (oldest ring entries first).
    std::stable_sort(batch.begin(), batch.end(),
                     [](const AsyncQuery *a, const AsyncQuery *b) {
                         return prefixKey(a) < prefixKey(b);
                     });
    size_t i = 0;
    while (i < batch.size()) {
        size_t j = i + 1;
        ExprRef key = prefixKey(batch[i]);
        while (j < batch.size() && key != nullptr &&
               prefixKey(batch[j]) == key)
            ++j;
        bool grouped = (j - i) >= 2;
        for (size_t k = i; k < j; ++k) {
            AsyncQuery &q = *batch[k];
            // Grouped queries share the lane's persistent context —
            // the activation-literal guards keep cross-path clause
            // mixing sound while sharing gates and learnt clauses.
            // Singletons use the owner's private slot, like the
            // blocking engine.
            lane.solver.bindPathContext(grouped ? &lane.batchSlot
                                                : q.ctxSlot);
            q.batched = grouped;
            bool overlapped =
                execGauge_ &&
                execGauge_->load(std::memory_order_relaxed) > 0;
            double t0 = nowSeconds();
            executeOn(lane.solver, q);
            double dt = nowSeconds() - t0;
            lane.solver.bindPathContext(nullptr);
            lane.stats.queriesServed++;
            if (grouped)
                lane.stats.batchedQueries++;
            lane.stats.busySeconds += dt;
            if (overlapped)
                lane.stats.overlapSeconds += dt;
            complete_(q);
        }
        i = j;
    }
    lane.stats.batches++;
    batch.clear();
}

void
SolverService::threadMain(unsigned lane_id)
{
    Lane &lane = *lanes_[lane_id];
    std::vector<AsyncQuery *> batch;
    batch.reserve(cfg_.batchMax);
    while (true) {
        uint64_t seen = submitEpoch_.load(std::memory_order_seq_cst);
        if (drain(lane_id, batch) > 0) {
            runBatch(lane, batch);
            continue;
        }
        if (stopping_.load(std::memory_order_acquire))
            return; // stopping and this lane's rings are drained
        std::unique_lock<std::mutex> lock(waitMu_);
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        cv_.wait(lock, [&] {
            return submitEpoch_.load(std::memory_order_relaxed) != seen ||
                   stopping_.load(std::memory_order_relaxed);
        });
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
}

} // namespace s2e::solver
