/**
 * @file
 * Bitvector-to-CNF lowering (Tseitin encoding with structural gate
 * hashing). One BitBlaster wraps one SatSolver instance; constraints
 * are asserted with assertTrue() and, after a Sat result, models are
 * read back per symbolic variable with modelValue().
 */

#ifndef S2E_SOLVER_BITBLAST_HH
#define S2E_SOLVER_BITBLAST_HH

#include <unordered_map>
#include <vector>

#include "expr/expr.hh"
#include "solver/sat.hh"

namespace s2e::solver {

using expr::ExprRef;
using sat::Lit;
using sat::SatSolver;

/** Lowers expression DAGs into a SatSolver's clause database. */
class BitBlaster
{
  public:
    explicit BitBlaster(SatSolver &sat);

    /** Bits of e, LSB first; cached per expression node. */
    const std::vector<Lit> &blast(ExprRef e);

    /** Single literal for a width-1 expression. */
    Lit blastBool(ExprRef e);

    /** Assert a width-1 expression to be true. */
    void assertTrue(ExprRef e);

    /**
     * Assert `guard -> e` (clause ¬guard ∨ lit(e)). With `guard` free
     * the constraint is inert; passing `guard` as a solve() assumption
     * activates it. This is the activation-literal primitive behind
     * the incremental solver context: constraints asserted this way
     * can be selectively enabled per query while their Tseitin gates
     * stay in the clause database for reuse.
     */
    void assertImplies(Lit guard, ExprRef e);

    /** After SatResult::Sat: concrete value of a Variable expression. */
    uint64_t modelValue(ExprRef var) const;

    /** All symbolic variables seen while blasting (id -> SAT bits). */
    const std::unordered_map<uint64_t, std::vector<Lit>> &varBits() const
    {
        return varBits_;
    }

    uint64_t numGates() const { return gates_; }

  private:
    Lit constLit(bool b) { return b ? litTrue_ : sat::litNot(litTrue_); }
    bool isConstLit(Lit l) const
    {
        return sat::litVar(l) == sat::litVar(litTrue_);
    }
    bool constLitValue(Lit l) const { return l == litTrue_; }

    Lit freshLit();
    Lit mkAnd(Lit a, Lit b);
    Lit mkOr(Lit a, Lit b);
    Lit mkXor(Lit a, Lit b);
    Lit mkMux(Lit c, Lit t, Lit f);
    Lit mkMaj(Lit a, Lit b, Lit c); ///< carry function

    std::vector<Lit> addBits(const std::vector<Lit> &a,
                             const std::vector<Lit> &b, Lit carry_in);
    std::vector<Lit> negBits(const std::vector<Lit> &a);
    std::vector<Lit> mulBits(const std::vector<Lit> &a,
                             const std::vector<Lit> &b);
    /** Restoring division; quotient and remainder outputs. */
    void divremBits(const std::vector<Lit> &a, const std::vector<Lit> &b,
                    std::vector<Lit> &quot, std::vector<Lit> &rem);
    std::vector<Lit> shiftBits(const std::vector<Lit> &a,
                               const std::vector<Lit> &amount,
                               expr::Kind kind);
    Lit ultBits(const std::vector<Lit> &a, const std::vector<Lit> &b);
    Lit eqBits(const std::vector<Lit> &a, const std::vector<Lit> &b);
    std::vector<Lit> muxBits(Lit c, const std::vector<Lit> &t,
                             const std::vector<Lit> &f);

    const std::vector<Lit> &blastRec(ExprRef e);

    SatSolver &sat_;
    Lit litTrue_;
    std::unordered_map<ExprRef, std::vector<Lit>> cache_;
    std::unordered_map<uint64_t, std::vector<Lit>> varBits_;
    uint64_t gates_ = 0;

    struct GateKey {
        int op;
        Lit a, b, c;
        bool operator==(const GateKey &o) const
        {
            return op == o.op && a == o.a && b == o.b && c == o.c;
        }
    };
    struct GateKeyHash {
        size_t
        operator()(const GateKey &k) const
        {
            uint64_t h = k.op;
            h = h * 0x100000001b3ULL ^ static_cast<uint32_t>(k.a);
            h = h * 0x100000001b3ULL ^ static_cast<uint32_t>(k.b);
            h = h * 0x100000001b3ULL ^ static_cast<uint32_t>(k.c);
            return h;
        }
    };
    std::unordered_map<GateKey, Lit, GateKeyHash> gateCache_;
};

} // namespace s2e::solver

#endif // S2E_SOLVER_BITBLAST_HH
