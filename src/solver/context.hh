/**
 * @file
 * Persistent incremental solver context: one long-lived SatSolver +
 * BitBlaster pair serving every SAT query issued along one execution
 * path.
 *
 * The fresh-per-query pipeline discards all Tseitin gates, structural
 * gate-hash entries and learnt clauses between queries, even though
 * consecutive queries on a path share almost their entire constraint
 * set. Here each constraint (and each query expression) is asserted
 * once, guarded by an activation literal `a` as the clause `¬a ∨ C`:
 * with `a` free the constraint is inert, and passing `a` as a solve()
 * assumption activates it. A query then selects exactly its
 * independence-sliced constraint subset plus the (possibly negated)
 * query expression via assumptions, so the clause database — gates and
 * learnt clauses included — survives and composes across
 * checkBranch/getValue/getRange calls.
 *
 * Soundness of the scheme:
 *  - The guarded database is always satisfiable (set every activation
 *    literal false), so the underlying solver can never latch its
 *    permanent conflict flag; Unsat under assumptions is an answer
 *    about the *selected* subset only.
 *  - CDCL learnt clauses are resolvents of database clauses alone
 *    (assumptions enter conflict analysis as decisions, which stay in
 *    the learnt clause as literals), so they remain valid for every
 *    later query regardless of which guards it assumes.
 *
 * Lifecycle: contexts are carried on the owning ExecutionState and
 * created lazily by the Solver on the path's first SAT-reaching query.
 * A fork drops the child's context (rebuilt lazily from the child's
 * own constraint set), and the state's current worker is the only
 * thread that ever touches it — ownership transfers with the state,
 * preserving the PR 4 thread-confinement model. Memory is bounded by a
 * gate/clause high-water eviction in the Solver (see
 * SolverOptions::maxCtxGates / maxCtxClauses).
 */

#ifndef S2E_SOLVER_CONTEXT_HH
#define S2E_SOLVER_CONTEXT_HH

#include <unordered_map>

#include "solver/bitblast.hh"
#include "solver/sat.hh"

namespace s2e::solver {

class IncrementalContext
{
  public:
    IncrementalContext() : blaster_(sat_) {}
    IncrementalContext(const IncrementalContext &) = delete;
    IncrementalContext &operator=(const IncrementalContext &) = delete;

    /**
     * Activation literal guarding `e`; blasts the expression and adds
     * the guard clause on first use. On reuse, the gate cost recorded
     * at creation time is added to *gates_saved — exactly the gates a
     * fresh-per-query pipeline would have rebuilt for this expression.
     */
    sat::Lit guardFor(ExprRef e, uint64_t *gates_saved);

    sat::SatSolver &sat() { return sat_; }
    BitBlaster &blaster() { return blaster_; }

    uint64_t gates() const { return blaster_.numGates(); }
    size_t
    clauseCount() const
    {
        return sat_.numClauses() + sat_.numLearnts();
    }
    size_t guardCount() const { return guards_.size(); }

    /** Has the context outgrown its memory bound? (Eviction test.) */
    bool
    overBudget(uint64_t max_gates, uint64_t max_clauses) const
    {
        return gates() > max_gates || clauseCount() > max_clauses;
    }

  private:
    struct Guard {
        sat::Lit lit;
        uint64_t gateCost; ///< gates created blasting this expression
    };

    sat::SatSolver sat_;
    BitBlaster blaster_;
    std::unordered_map<ExprRef, Guard> guards_;
};

} // namespace s2e::solver

#endif // S2E_SOLVER_CONTEXT_HH
