/**
 * @file
 * Top-level constraint solver used by the symbolic execution engine.
 *
 * A query is a set of path constraints plus (optionally) a query
 * expression. The pipeline mirrors KLEE's solver chain, rebuilt from
 * scratch: bitfield simplification -> constant/known-bits fast path ->
 * constraint independence slicing -> counterexample (model) cache ->
 * bit-blasting -> CDCL SAT.
 *
 * Resilience layer: every query runs under a QueryBudget (conflict +
 * wall-clock limits) with one optional retry at an escalated budget,
 * and every public method returns a tri-state QueryOutcome — Unknown
 * is a first-class answer that callers must handle explicitly (the
 * engine degrades gracefully instead of silently dropping paths). A
 * deterministic FaultPolicy shim can force Unknown on chosen queries
 * so every degradation path is exercisable in tests and benchmarks.
 */

#ifndef S2E_SOLVER_SOLVER_HH
#define S2E_SOLVER_SOLVER_HH

#include <memory>
#include <optional>
#include <vector>

#include "expr/absint/analyzer.hh"
#include "expr/builder.hh"
#include "expr/eval.hh"
#include "expr/simplify.hh"
#include "obs/profiler.hh"
#include "solver/sat.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace s2e::solver {

class IncrementalContext;

using expr::Assignment;
using expr::ExprRef;
using sat::QueryBudget;

/** Solver feature switches (benchmarkable ablations) and budgets. */
struct SolverOptions {
    bool useSimplifier = true;   ///< §5 bitfield simplifier
    bool useIndependence = true; ///< constraint independence slicing
    bool useModelCache = true;   ///< counterexample cache / model reuse
    /** Per-path incremental SAT contexts (activation-literal guarded
     *  constraint reuse; see context.hh). Only effective while a path
     *  context slot is bound (bindPathContext); with no slot, or with
     *  this off, every query builds a fresh solver — the differential
     *  oracle the incremental path is validated against. */
    bool useIncremental = true;
    /** Static feasibility pre-check: abstract interpretation over the
     *  constraint set answers statically-decidable queries without
     *  bit-blasting, seeds getRange's binary search, and feeds
     *  whole-path facts into query simplification (see
     *  expr/absint/). Static-Unsat verdicts are unconditionally
     *  sound; static-Sat verdicts additionally rely on the
     *  satisfiable-constraint-set invariant, so they are only issued
     *  while useIndependence (which states that contract) is on. */
    bool useAbsint = true;
    /** Differential oracle: re-run the full SAT pipeline after every
     *  static verdict and compare (absint.disagreements counts, and
     *  asserts on, mismatches). Defaults on in debug builds; the
     *  `ctest -L absint` suite enables it explicitly. */
    bool verifyAbsint = expr::absint::kAbsintVerifyDefault;
    uint64_t maxCtxGates = 1u << 18;   ///< ctx eviction high-water (gates)
    uint64_t maxCtxClauses = 1u << 19; ///< ditto (clauses incl. learnts)
    int64_t maxConflicts = -1;   ///< SAT conflict budget per query
    int64_t maxMicros = -1;      ///< wall-clock budget per query (µs)
    double retryMultiplier = 4.0; ///< budget escalation factor per retry
    unsigned maxRetries = 1;      ///< escalated-budget passes before Unknown
};

/**
 * Fixed-capacity ring of recent solver models (the counterexample
 * cache's backing store). Insertion past capacity overwrites the
 * oldest entry in O(1) — the previous std::vector backing paid an
 * O(n) erase(begin()) shift on every insertion once full — and
 * assignments identical to a cached one are skipped entirely (repeat
 * queries otherwise flush the older, still-useful models).
 */
class ModelRing
{
  public:
    explicit ModelRing(size_t capacity = 64) : cap_(capacity) {}

    /** Store a model unless an identical assignment is already
     *  cached; returns false when skipped as a duplicate. */
    bool
    insert(Assignment a)
    {
        for (const Assignment &m : ring_)
            if (m.values() == a.values())
                return false;
        if (ring_.size() < cap_) {
            ring_.push_back(std::move(a));
        } else {
            ring_[next_] = std::move(a);
            next_ = (next_ + 1) % cap_;
        }
        return true;
    }

    size_t size() const { return ring_.size(); }
    size_t capacity() const { return cap_; }

    /** First model (newest insertion first) satisfying `pred`, or
     *  nullptr. Newest-first keeps the hottest models cheapest. */
    template <typename Pred>
    const Assignment *
    findNewestFirst(Pred pred) const
    {
        size_t n = ring_.size();
        for (size_t k = 0; k < n; ++k) {
            // While filling, newest is the back; once full, the slot
            // before next_ (the overwrite cursor) is newest.
            size_t idx = n < cap_ ? n - 1 - k
                                  : (next_ + 2 * cap_ - 1 - k) % cap_;
            if (pred(ring_[idx]))
                return &ring_[idx];
        }
        return nullptr;
    }

  private:
    size_t cap_;
    std::vector<Assignment> ring_;
    size_t next_ = 0; ///< overwrite cursor, meaningful once full
};

/** Outcome of a satisfiability check. */
enum class CheckResult { Sat, Unsat, Unknown };

/**
 * Tri-state result of one solver query plus its resource telemetry.
 *
 * For predicate-style queries (mayBeTrue / mustBeTrue / the two sides
 * of checkBranch) `result` encodes the *answer*: Sat = definitely yes,
 * Unsat = definitely no, Unknown = the solver gave up inside its
 * budget. There is deliberately no conversion to bool: collapsing
 * Unknown silently is exactly the unsoundness this type exists to
 * prevent — call yes()/no()/isUnknown() and take an explicit action.
 */
struct QueryOutcome {
    CheckResult result = CheckResult::Unknown;
    uint64_t conflicts = 0; ///< SAT conflicts spent (all attempts)
    uint64_t micros = 0;    ///< wall-clock microseconds spent
    bool timedOut = false;  ///< Unknown caused by the wall deadline
                            ///< (or an injected fault), not conflicts
    unsigned retries = 0;   ///< escalated-budget re-solves used

    bool isSat() const { return result == CheckResult::Sat; }
    bool isUnsat() const { return result == CheckResult::Unsat; }
    bool isUnknown() const { return result == CheckResult::Unknown; }

    /** Definite-answer accessors for predicate-style queries. */
    bool yes() const { return isSat(); }
    bool no() const { return isUnsat(); }
};

/**
 * Deterministic solver fault injection (the paper's hardware
 * fault-injection idea from DDT, pointed at the solver itself): forces
 * Unknown on selected queries so engine degradation paths can be
 * exercised deterministically. Queries are numbered from 1, counting
 * from the moment the policy is installed.
 */
struct FaultPolicy {
    bool enabled = false;
    uint64_t seed = 0x5eedULL;   ///< seed for the rate-based trigger
    double unknownRate = 0.0;    ///< fraction of queries forced Unknown
    std::vector<uint64_t> triggerQueries; ///< explicit 1-based indices
};

/**
 * The solver facade. All methods are complete decision procedures
 * over 1..64-bit bitvector expressions (no arrays: symbolic memory is
 * lowered to ite chains by the memory model, as in the paper's
 * page-passing scheme) — modulo the per-query budget, which turns
 * blow-ups into Unknown outcomes instead of unbounded stalls.
 *
 * Contract with independence slicing enabled (the default): query
 * methods answer relative to the *satisfiable-constraint-set
 * invariant* the engine maintains for every path — constraints that
 * share no variables (transitively) with the query are assumed
 * satisfiable and sliced away. To decide raw satisfiability of an
 * arbitrary constraint set, use getInitialValues() (which never
 * slices) or disable useIndependence.
 */
class Solver
{
  public:
    explicit Solver(expr::ExprBuilder &builder, SolverOptions opts = {});

    /** Is `constraints && expr` satisfiable? Fills model if non-null
     *  on a Sat result. */
    QueryOutcome checkSat(const std::vector<ExprRef> &constraints,
                          ExprRef expr, Assignment *model = nullptr);

    /** May `expr` be true under the constraints? (Sat = yes.) */
    QueryOutcome mayBeTrue(const std::vector<ExprRef> &constraints,
                           ExprRef expr);

    /** Must `expr` be true under the constraints? (Sat = yes.) */
    QueryOutcome mustBeTrue(const std::vector<ExprRef> &constraints,
                            ExprRef expr);

    /** Both directions with one entry point (forking uses this).
     *  Each side is the tri-state feasibility of that branch. */
    struct BranchFeasibility {
        QueryOutcome trueSide;
        QueryOutcome falseSide;
    };
    BranchFeasibility checkBranch(const std::vector<ExprRef> &constraints,
                                  ExprRef cond);

    /**
     * A concrete value for `expr` consistent with the constraints.
     * Fills *value on a Sat result; Unsat means the (sliced)
     * constraint set is infeasible, Unknown that the solver gave up.
     */
    QueryOutcome getValue(const std::vector<ExprRef> &constraints,
                          ExprRef expr, uint64_t *value);

    /**
     * Satisfying assignment covering every variable in the constraint
     * set (used to produce test cases / crash inputs). Fills *model on
     * a Sat result.
     */
    QueryOutcome getInitialValues(const std::vector<ExprRef> &constraints,
                                  Assignment *model);

    /**
     * Minimum and maximum of expr under the constraints (binary search
     * over feasibility bounds). Fills min_out and max_out on Sat; any
     * sub-query giving up yields an Unknown outcome (never a bogus
     * range). Telemetry aggregates over all sub-queries.
     */
    QueryOutcome getRange(const std::vector<ExprRef> &constraints,
                          ExprRef expr, uint64_t *min_out,
                          uint64_t *max_out);

    /** Install (or clear) the fault-injection shim. Resets the query
     *  counter and the policy RNG so runs are reproducible. */
    void setFaultPolicy(const FaultPolicy &policy);
    const FaultPolicy &faultPolicy() const { return faultPolicy_; }

    /** Queries issued since construction / the last setFaultPolicy. */
    uint64_t queryCount() const { return queryCounter_; }

    /** Cumulative wall-clock seconds this solver spent answering
     *  queries (the "solver.time" stat) — what the fiber scheduler
     *  moves off the worker threads. */
    double
    totalQuerySeconds() const
    {
        return hot_.time ? *hot_.time : 0.0;
    }

    Stats &stats() { return stats_; }
    const SolverOptions &options() const { return opts_; }

    /** Attach the engine's phase profiler: every query then runs
     *  under a Solver span (nullptr detaches; never owned). */
    void setProfiler(obs::PhaseProfiler *profiler) { profiler_ = profiler; }

    /**
     * Bind the current path's incremental-context slot (the
     * ExecutionState field). The engine binds before executing a
     * state's timeslice and unbinds (nullptr) when done; while bound
     * and useIncremental is on, SAT-reaching queries go through the
     * persistent context, which the solver creates into the slot
     * lazily and evicts when it outgrows the configured high-water
     * marks. The slot must outlive the binding.
     */
    void
    bindPathContext(std::shared_ptr<IncrementalContext> *slot)
    {
        ctxSlot_ = slot;
    }

  private:
    std::vector<ExprRef>
    sliceIndependent(const std::vector<ExprRef> &constraints, ExprRef expr);
    QueryOutcome solveSat(const std::vector<ExprRef> &constraints,
                          ExprRef expr, Assignment *model);
    /** Slicing -> model cache -> SAT tail of solveSat, shared by the
     *  normal path and the absint differential oracle. */
    void solveSatPipeline(const std::vector<ExprRef> &cs, ExprRef q,
                          Assignment *model, QueryOutcome &out);
    bool tryCachedModels(const std::vector<ExprRef> &constraints,
                         ExprRef expr, Assignment *model);
    bool faultTriggers(uint64_t query_index);

    expr::ExprBuilder &builder_;
    expr::Simplifier simplifier_;
    expr::absint::Analyzer absint_;
    SolverOptions opts_;
    Stats stats_;
    obs::PhaseProfiler *profiler_ = nullptr;

    /** Pre-registered Stats slots for the per-query telemetry: the
     *  query path updates these through plain pointers. */
    struct HotStats {
        uint64_t *queries = nullptr;
        uint64_t *unknownResults = nullptr;
        uint64_t *maxQueryMicros = nullptr;
        uint64_t *faultsInjected = nullptr;
        uint64_t *constraintsSlicedAway = nullptr;
        uint64_t *modelCacheHits = nullptr;
        uint64_t *cacheSat = nullptr;
        uint64_t *satQueries = nullptr;
        uint64_t *satConflicts = nullptr;
        uint64_t *satDecisions = nullptr;
        uint64_t *maxGates = nullptr;
        uint64_t *ctxReuses = nullptr;
        uint64_t *gatesSaved = nullptr;
        uint64_t *ctxEvictions = nullptr;
        uint64_t *retries = nullptr;
        uint64_t *timeouts = nullptr;
        uint64_t *branchShortCircuits = nullptr;
        uint64_t *absintPrunes = nullptr;
        uint64_t *absintStaticSat = nullptr;
        uint64_t *absintStaticUnsat = nullptr;
        uint64_t *absintSimplifyFolds = nullptr;
        uint64_t *absintRangeSeeds = nullptr;
        uint64_t *absintDisagreements = nullptr;
        uint64_t *absintUnknownRescues = nullptr;
        double *time = nullptr;
        double *simplifyTime = nullptr;
        double *satTime = nullptr;
    } hot_;
    ModelRing recentModels_; ///< bounded model cache
    /** Bound path-context slot (owned by the current ExecutionState);
     *  nullptr outside engine timeslices. */
    std::shared_ptr<IncrementalContext> *ctxSlot_ = nullptr;
    FaultPolicy faultPolicy_;
    Rng faultRng_;
    uint64_t queryCounter_ = 0;
};

} // namespace s2e::solver

#endif // S2E_SOLVER_SOLVER_HH
