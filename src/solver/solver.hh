/**
 * @file
 * Top-level constraint solver used by the symbolic execution engine.
 *
 * A query is a set of path constraints plus (optionally) a query
 * expression. The pipeline mirrors KLEE's solver chain, rebuilt from
 * scratch: bitfield simplification -> constant/known-bits fast path ->
 * constraint independence slicing -> counterexample (model) cache ->
 * bit-blasting -> CDCL SAT.
 */

#ifndef S2E_SOLVER_SOLVER_HH
#define S2E_SOLVER_SOLVER_HH

#include <optional>
#include <vector>

#include "expr/builder.hh"
#include "expr/eval.hh"
#include "expr/simplify.hh"
#include "solver/sat.hh"
#include "support/stats.hh"

namespace s2e::solver {

using expr::Assignment;
using expr::ExprRef;

/** Solver feature switches (benchmarkable ablations). */
struct SolverOptions {
    bool useSimplifier = true;   ///< §5 bitfield simplifier
    bool useIndependence = true; ///< constraint independence slicing
    bool useModelCache = true;   ///< counterexample cache / model reuse
    int64_t maxConflicts = -1;   ///< SAT conflict budget per query
};

/** Outcome of a satisfiability check. */
enum class CheckResult { Sat, Unsat, Unknown };

/**
 * The solver facade. All methods are complete decision procedures
 * over 1..64-bit bitvector expressions (no arrays: symbolic memory is
 * lowered to ite chains by the memory model, as in the paper's
 * page-passing scheme).
 *
 * Contract with independence slicing enabled (the default): query
 * methods answer relative to the *satisfiable-constraint-set
 * invariant* the engine maintains for every path — constraints that
 * share no variables (transitively) with the query are assumed
 * satisfiable and sliced away. To decide raw satisfiability of an
 * arbitrary constraint set, use getInitialValues() (which never
 * slices) or disable useIndependence.
 */
class Solver
{
  public:
    explicit Solver(expr::ExprBuilder &builder, SolverOptions opts = {});

    /** Is `constraints && expr` satisfiable? Fills model if non-null. */
    CheckResult checkSat(const std::vector<ExprRef> &constraints,
                         ExprRef expr, Assignment *model = nullptr);

    /** May `expr` be true under the constraints? */
    bool mayBeTrue(const std::vector<ExprRef> &constraints, ExprRef expr);

    /** Must `expr` be true under the constraints? */
    bool mustBeTrue(const std::vector<ExprRef> &constraints, ExprRef expr);

    /** Both directions with one entry point (forking uses this). */
    struct BranchFeasibility {
        bool trueFeasible;
        bool falseFeasible;
    };
    BranchFeasibility checkBranch(const std::vector<ExprRef> &constraints,
                                  ExprRef cond);

    /**
     * A concrete value for `expr` consistent with the constraints.
     * Returns nullopt when the constraints are unsatisfiable.
     */
    std::optional<uint64_t> getValue(const std::vector<ExprRef> &constraints,
                                     ExprRef expr);

    /**
     * Satisfying assignment covering every variable in the constraint
     * set (used to produce test cases / crash inputs).
     */
    std::optional<Assignment>
    getInitialValues(const std::vector<ExprRef> &constraints);

    /** Minimum and maximum of expr under the constraints (binary
     *  search over mustBeTrue bounds). */
    std::optional<std::pair<uint64_t, uint64_t>>
    getRange(const std::vector<ExprRef> &constraints, ExprRef expr);

    Stats &stats() { return stats_; }
    const SolverOptions &options() const { return opts_; }

  private:
    std::vector<ExprRef>
    sliceIndependent(const std::vector<ExprRef> &constraints, ExprRef expr);
    CheckResult solveSat(const std::vector<ExprRef> &constraints,
                         ExprRef expr, Assignment *model);
    bool tryCachedModels(const std::vector<ExprRef> &constraints,
                         ExprRef expr, Assignment *model);

    expr::ExprBuilder &builder_;
    expr::Simplifier simplifier_;
    SolverOptions opts_;
    Stats stats_;
    std::vector<Assignment> recentModels_; ///< bounded model cache
};

} // namespace s2e::solver

#endif // S2E_SOLVER_SOLVER_HH
