/**
 * @file
 * Top-level constraint solver used by the symbolic execution engine.
 *
 * A query is a set of path constraints plus (optionally) a query
 * expression. The pipeline mirrors KLEE's solver chain, rebuilt from
 * scratch: bitfield simplification -> constant/known-bits fast path ->
 * constraint independence slicing -> counterexample (model) cache ->
 * bit-blasting -> CDCL SAT.
 *
 * Resilience layer: every query runs under a QueryBudget (conflict +
 * wall-clock limits) with one optional retry at an escalated budget,
 * and every public method returns a tri-state QueryOutcome — Unknown
 * is a first-class answer that callers must handle explicitly (the
 * engine degrades gracefully instead of silently dropping paths). A
 * deterministic FaultPolicy shim can force Unknown on chosen queries
 * so every degradation path is exercisable in tests and benchmarks.
 */

#ifndef S2E_SOLVER_SOLVER_HH
#define S2E_SOLVER_SOLVER_HH

#include <optional>
#include <vector>

#include "expr/builder.hh"
#include "expr/eval.hh"
#include "expr/simplify.hh"
#include "obs/profiler.hh"
#include "solver/sat.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace s2e::solver {

using expr::Assignment;
using expr::ExprRef;
using sat::QueryBudget;

/** Solver feature switches (benchmarkable ablations) and budgets. */
struct SolverOptions {
    bool useSimplifier = true;   ///< §5 bitfield simplifier
    bool useIndependence = true; ///< constraint independence slicing
    bool useModelCache = true;   ///< counterexample cache / model reuse
    int64_t maxConflicts = -1;   ///< SAT conflict budget per query
    int64_t maxMicros = -1;      ///< wall-clock budget per query (µs)
    double retryMultiplier = 4.0; ///< budget escalation factor per retry
    unsigned maxRetries = 1;      ///< escalated-budget passes before Unknown
};

/** Outcome of a satisfiability check. */
enum class CheckResult { Sat, Unsat, Unknown };

/**
 * Tri-state result of one solver query plus its resource telemetry.
 *
 * For predicate-style queries (mayBeTrue / mustBeTrue / the two sides
 * of checkBranch) `result` encodes the *answer*: Sat = definitely yes,
 * Unsat = definitely no, Unknown = the solver gave up inside its
 * budget. There is deliberately no conversion to bool: collapsing
 * Unknown silently is exactly the unsoundness this type exists to
 * prevent — call yes()/no()/isUnknown() and take an explicit action.
 */
struct QueryOutcome {
    CheckResult result = CheckResult::Unknown;
    uint64_t conflicts = 0; ///< SAT conflicts spent (all attempts)
    uint64_t micros = 0;    ///< wall-clock microseconds spent
    bool timedOut = false;  ///< Unknown caused by the wall deadline
                            ///< (or an injected fault), not conflicts
    unsigned retries = 0;   ///< escalated-budget re-solves used

    bool isSat() const { return result == CheckResult::Sat; }
    bool isUnsat() const { return result == CheckResult::Unsat; }
    bool isUnknown() const { return result == CheckResult::Unknown; }

    /** Definite-answer accessors for predicate-style queries. */
    bool yes() const { return isSat(); }
    bool no() const { return isUnsat(); }
};

/**
 * Deterministic solver fault injection (the paper's hardware
 * fault-injection idea from DDT, pointed at the solver itself): forces
 * Unknown on selected queries so engine degradation paths can be
 * exercised deterministically. Queries are numbered from 1, counting
 * from the moment the policy is installed.
 */
struct FaultPolicy {
    bool enabled = false;
    uint64_t seed = 0x5eedULL;   ///< seed for the rate-based trigger
    double unknownRate = 0.0;    ///< fraction of queries forced Unknown
    std::vector<uint64_t> triggerQueries; ///< explicit 1-based indices
};

/**
 * The solver facade. All methods are complete decision procedures
 * over 1..64-bit bitvector expressions (no arrays: symbolic memory is
 * lowered to ite chains by the memory model, as in the paper's
 * page-passing scheme) — modulo the per-query budget, which turns
 * blow-ups into Unknown outcomes instead of unbounded stalls.
 *
 * Contract with independence slicing enabled (the default): query
 * methods answer relative to the *satisfiable-constraint-set
 * invariant* the engine maintains for every path — constraints that
 * share no variables (transitively) with the query are assumed
 * satisfiable and sliced away. To decide raw satisfiability of an
 * arbitrary constraint set, use getInitialValues() (which never
 * slices) or disable useIndependence.
 */
class Solver
{
  public:
    explicit Solver(expr::ExprBuilder &builder, SolverOptions opts = {});

    /** Is `constraints && expr` satisfiable? Fills model if non-null
     *  on a Sat result. */
    QueryOutcome checkSat(const std::vector<ExprRef> &constraints,
                          ExprRef expr, Assignment *model = nullptr);

    /** May `expr` be true under the constraints? (Sat = yes.) */
    QueryOutcome mayBeTrue(const std::vector<ExprRef> &constraints,
                           ExprRef expr);

    /** Must `expr` be true under the constraints? (Sat = yes.) */
    QueryOutcome mustBeTrue(const std::vector<ExprRef> &constraints,
                            ExprRef expr);

    /** Both directions with one entry point (forking uses this).
     *  Each side is the tri-state feasibility of that branch. */
    struct BranchFeasibility {
        QueryOutcome trueSide;
        QueryOutcome falseSide;
    };
    BranchFeasibility checkBranch(const std::vector<ExprRef> &constraints,
                                  ExprRef cond);

    /**
     * A concrete value for `expr` consistent with the constraints.
     * Fills *value on a Sat result; Unsat means the (sliced)
     * constraint set is infeasible, Unknown that the solver gave up.
     */
    QueryOutcome getValue(const std::vector<ExprRef> &constraints,
                          ExprRef expr, uint64_t *value);

    /**
     * Satisfying assignment covering every variable in the constraint
     * set (used to produce test cases / crash inputs). Fills *model on
     * a Sat result.
     */
    QueryOutcome getInitialValues(const std::vector<ExprRef> &constraints,
                                  Assignment *model);

    /**
     * Minimum and maximum of expr under the constraints (binary search
     * over feasibility bounds). Fills min_out and max_out on Sat; any
     * sub-query giving up yields an Unknown outcome (never a bogus
     * range). Telemetry aggregates over all sub-queries.
     */
    QueryOutcome getRange(const std::vector<ExprRef> &constraints,
                          ExprRef expr, uint64_t *min_out,
                          uint64_t *max_out);

    /** Install (or clear) the fault-injection shim. Resets the query
     *  counter and the policy RNG so runs are reproducible. */
    void setFaultPolicy(const FaultPolicy &policy);
    const FaultPolicy &faultPolicy() const { return faultPolicy_; }

    /** Queries issued since construction / the last setFaultPolicy. */
    uint64_t queryCount() const { return queryCounter_; }

    Stats &stats() { return stats_; }
    const SolverOptions &options() const { return opts_; }

    /** Attach the engine's phase profiler: every query then runs
     *  under a Solver span (nullptr detaches; never owned). */
    void setProfiler(obs::PhaseProfiler *profiler) { profiler_ = profiler; }

  private:
    std::vector<ExprRef>
    sliceIndependent(const std::vector<ExprRef> &constraints, ExprRef expr);
    QueryOutcome solveSat(const std::vector<ExprRef> &constraints,
                          ExprRef expr, Assignment *model);
    bool tryCachedModels(const std::vector<ExprRef> &constraints,
                         ExprRef expr, Assignment *model);
    bool faultTriggers(uint64_t query_index);

    expr::ExprBuilder &builder_;
    expr::Simplifier simplifier_;
    SolverOptions opts_;
    Stats stats_;
    obs::PhaseProfiler *profiler_ = nullptr;

    /** Pre-registered Stats slots for the per-query telemetry: the
     *  query path updates these through plain pointers. */
    struct HotStats {
        uint64_t *queries = nullptr;
        uint64_t *unknownResults = nullptr;
        uint64_t *maxQueryMicros = nullptr;
        uint64_t *faultsInjected = nullptr;
        uint64_t *constraintsSlicedAway = nullptr;
        uint64_t *modelCacheHits = nullptr;
        uint64_t *cacheSat = nullptr;
        uint64_t *satQueries = nullptr;
        uint64_t *satConflicts = nullptr;
        uint64_t *satDecisions = nullptr;
        uint64_t *maxGates = nullptr;
        uint64_t *retries = nullptr;
        uint64_t *timeouts = nullptr;
        uint64_t *branchShortCircuits = nullptr;
        double *time = nullptr;
        double *simplifyTime = nullptr;
        double *satTime = nullptr;
    } hot_;
    std::vector<Assignment> recentModels_; ///< bounded model cache
    FaultPolicy faultPolicy_;
    Rng faultRng_;
    uint64_t queryCounter_ = 0;
};

} // namespace s2e::solver

#endif // S2E_SOLVER_SOLVER_HH
