/**
 * @file
 * Asynchronous batched solver service: the "solving happens elsewhere"
 * half of the fiber scheduler (ROADMAP item 2).
 *
 * Workers never block in the solver. A choke-point query (checkBranch,
 * getValue, getRange, mayBeTrue/mustBeTrue) is written into an
 * AsyncQuery descriptor, pushed onto the submitting worker's SPSC
 * ring, and the state's fiber parks — the worker immediately takes
 * other work. Dedicated service threads drain the rings in small
 * batches, answer each query on their own Solver, and invoke the
 * completion callback, which hands the owning state back to the work
 * queue so any worker can resume its fiber with the results.
 *
 * Batching: queries whose constraint sets share a prefix (in practice:
 * sibling states recently forked from one path) are grouped into one
 * incremental context per service thread. The activation-literal
 * scheme from context.hh makes this sound — every asserted constraint
 * is guarded, so a context can hold clauses from *different* paths and
 * each query still selects exactly its own sliced subset via
 * assumptions, while sharing Tseitin gates and learnt clauses across
 * the whole sibling group. Queries that batch with nobody run against
 * the owning state's private context slot, exactly as the blocking
 * engine would.
 *
 * Memory model: an AsyncQuery lives on the suspended fiber's stack.
 * The SPSC ring's release/acquire pair publishes the descriptor (and
 * everything the parked state wrote) to the service thread; the
 * completion callback's work-queue push publishes the results back to
 * whichever worker resumes the fiber. While a query is in flight its
 * state is owned by the service — no worker touches it.
 *
 * Overlap accounting: the engine exposes a gauge of workers currently
 * executing guest code; the service samples it at each query start and
 * counts query seconds that overlapped ≥1 executing worker. On the
 * blocking engine this ratio is identically zero (the querying worker
 * stops executing to solve); any positive value is execution the fiber
 * scheduler reclaimed.
 */

#ifndef S2E_SOLVER_SERVICE_HH
#define S2E_SOLVER_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "solver/solver.hh"

namespace s2e::solver {

class IncrementalContext;

/**
 * One in-flight solver query. Allocated on the suspended fiber's stack
 * by the engine's choke-point helper; the service fills the result
 * fields and hands the owner back through the completion callback.
 */
struct AsyncQuery {
    enum class Kind {
        CheckBranch, ///< both-sides feasibility (fork points)
        GetValue,    ///< one concrete example value
        MayBeTrue,   ///< Sat = the predicate can hold
        MustBeTrue,  ///< Sat = the predicate always holds
        GetRange,    ///< min/max by feasibility binary search
    };

    Kind kind = Kind::MayBeTrue;
    /** The owning state's constraint set; stable while suspended. */
    const std::vector<ExprRef> *constraints = nullptr;
    ExprRef expr = nullptr;
    /** The owning state's private incremental-context slot, used when
     *  the query does not batch with siblings. */
    std::shared_ptr<IncrementalContext> *ctxSlot = nullptr;
    /** Opaque owner handle (the ExecutionState) for the completion
     *  callback. */
    void *token = nullptr;
    /** Worker that submitted — the completion push targets its shard
     *  to keep the resumed state cache-warm. */
    unsigned producer = 0;

    // --- results (valid once the completion callback runs) ---
    Solver::BranchFeasibility branch; ///< Kind::CheckBranch
    QueryOutcome outcome;             ///< every other kind
    uint64_t value = 0;               ///< Kind::GetValue
    uint64_t lo = 0;                  ///< Kind::GetRange
    uint64_t hi = 0;                  ///< Kind::GetRange
    /** Answered inside a shared sibling-batch context? */
    bool batched = false;
};

/**
 * Single-producer single-consumer pointer ring (lock-free, power-of-two
 * capacity). The producer is the owning worker thread; the consumer is
 * the service thread the ring is partitioned to.
 */
class SpscRing
{
  public:
    explicit SpscRing(size_t capacity);

    /** Producer side. False when full — the caller falls back to
     *  answering the query inline on the worker. */
    bool push(AsyncQuery *q);

    /** Consumer side. Null when empty. */
    AsyncQuery *pop();

    /** Approximate occupancy (telemetry only). */
    size_t size() const;

  private:
    std::vector<AsyncQuery *> slots_;
    size_t mask_;
    /** Consumer cursor; producer reads it to detect full. */
    std::atomic<size_t> head_{0};
    /** Producer cursor; consumer reads it to detect empty. */
    std::atomic<size_t> tail_{0};
};

class SolverService
{
  public:
    struct Config {
        unsigned threads = 1;     ///< service threads
        unsigned workers = 1;     ///< producer rings (one per worker)
        size_t queueCapacity = 64; ///< per-ring capacity (rounded to 2^k)
        unsigned batchMax = 16;    ///< max queries drained per batch
    };

    struct ServiceStats {
        uint64_t queriesServed = 0;
        /** Queries answered inside a shared sibling-batch context. */
        uint64_t batchedQueries = 0;
        uint64_t batches = 0; ///< drain rounds with ≥1 query
        uint64_t queueDepthPeak = 0;
        double busySeconds = 0;    ///< service time inside the solver
        double overlapSeconds = 0; ///< busy time with ≥1 worker executing
    };

    /** Called on a service thread once a query's results are filled;
     *  must hand the owning state back to the scheduler. */
    using CompletionFn = std::function<void(AsyncQuery &)>;

    SolverService(expr::ExprBuilder &builder, const SolverOptions &opts,
                  const Config &cfg, CompletionFn complete);
    ~SolverService();

    SolverService(const SolverService &) = delete;
    SolverService &operator=(const SolverService &) = delete;

    /** Spawn the service threads. */
    void start();

    /** Drain every ring, run the threads down, join them, and fold the
     *  per-thread stats. Idempotent. */
    void stop();

    /**
     * Submit from worker `worker`'s ring. False when the ring is full:
     * the caller must answer the query inline instead (never blocks).
     * On success the descriptor belongs to the service until the
     * completion callback has run.
     */
    bool submit(unsigned worker, AsyncQuery *q);

    /** Engine gauge: number of workers currently executing guest code.
     *  Sampled per query for the overlap metric. Optional. */
    void
    setExecGauge(const std::atomic<int> *gauge)
    {
        execGauge_ = gauge;
    }

    /** Valid after stop(). */
    const ServiceStats &stats() const { return stats_; }

    /** The per-thread solvers, for end-of-run stats merging (valid
     *  after stop(); the engine folds them like worker solvers). */
    std::vector<Solver *> solvers();

    /** Answer one descriptor on `solver` — the single switch shared by
     *  the service threads and the engine's ring-full inline fallback,
     *  so both execute byte-identical pipelines. */
    static void executeOn(Solver &solver, AsyncQuery &q);

  private:
    struct Lane; // per-service-thread context (solver, batch slot)

    void threadMain(unsigned lane_id);
    /** Drain up to batchMax descriptors from this lane's rings. */
    size_t drain(unsigned lane_id, std::vector<AsyncQuery *> &out);
    void runBatch(Lane &lane, std::vector<AsyncQuery *> &batch);

    expr::ExprBuilder &builder_;
    SolverOptions opts_;
    Config cfg_;
    CompletionFn complete_;

    std::vector<std::unique_ptr<SpscRing>> rings_; ///< one per worker
    std::vector<std::unique_ptr<Lane>> lanes_;     ///< one per thread

    /** Bumped (seq_cst) after every ring push; the lanes' sleep
     *  predicate — same lost-wakeup-free scheme as WorkQueue. */
    std::atomic<uint64_t> submitEpoch_{0};
    std::atomic<uint32_t> sleepers_{0};
    std::mutex waitMu_;
    std::condition_variable cv_;
    std::atomic<bool> stopping_{false};
    bool started_ = false;
    bool joined_ = false;

    const std::atomic<int> *execGauge_ = nullptr;
    ServiceStats stats_; ///< folded from lanes in stop()
};

} // namespace s2e::solver

#endif // S2E_SOLVER_SERVICE_HH
