#include "solver/solver.hh"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "support/bitops.hh"

#include "solver/bitblast.hh"
#include "solver/context.hh"
#include "support/logging.hh"

namespace s2e::solver {

using expr::Kind;

namespace {

/** Collect variable ids appearing in an expression. */
void
collectVars(ExprRef e, std::unordered_set<uint64_t> &vars,
            std::unordered_set<ExprRef> &seen)
{
    if (!seen.insert(e).second)
        return;
    if (e->isVariable()) {
        vars.insert(e->varId());
        return;
    }
    for (unsigned i = 0; i < e->arity(); ++i)
        collectVars(e->kid(i), vars, seen);
}

std::unordered_set<uint64_t>
varsOf(ExprRef e)
{
    std::unordered_set<uint64_t> vars;
    std::unordered_set<ExprRef> seen;
    collectVars(e, vars, seen);
    return vars;
}

uint64_t
microsSince(std::chrono::steady_clock::time_point start)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

/** Fold a sub-query's telemetry into an aggregate outcome. */
void
accumulate(QueryOutcome &agg, const QueryOutcome &sub)
{
    agg.conflicts += sub.conflicts;
    agg.micros += sub.micros;
    agg.retries += sub.retries;
    agg.timedOut = agg.timedOut || sub.timedOut;
}

} // namespace

Solver::Solver(expr::ExprBuilder &builder, SolverOptions opts)
    : builder_(builder), simplifier_(builder), opts_(opts),
      faultRng_(faultPolicy_.seed)
{
    // Register the per-query telemetry slots once; solveSat then
    // updates them through plain pointers (no map lookup per query).
    hot_.queries = &stats_.counterSlot("solver.queries");
    hot_.unknownResults = &stats_.counterSlot("solver.unknown_results");
    hot_.maxQueryMicros = &stats_.counterSlot("solver.max_query_micros");
    hot_.faultsInjected = &stats_.counterSlot("solver.faults_injected");
    hot_.constraintsSlicedAway =
        &stats_.counterSlot("solver.constraints_sliced_away");
    hot_.modelCacheHits = &stats_.counterSlot("solver.model_cache_hits");
    hot_.cacheSat = &stats_.counterSlot("solver.cache_sat");
    hot_.satQueries = &stats_.counterSlot("solver.sat_queries");
    hot_.satConflicts = &stats_.counterSlot("solver.sat_conflicts");
    hot_.satDecisions = &stats_.counterSlot("solver.sat_decisions");
    hot_.maxGates = &stats_.counterSlot("solver.max_gates");
    hot_.ctxReuses = &stats_.counterSlot("solver.ctx_reuses");
    hot_.gatesSaved = &stats_.counterSlot("solver.gates_saved");
    hot_.ctxEvictions = &stats_.counterSlot("solver.ctx_evictions");
    hot_.retries = &stats_.counterSlot("solver.retries");
    hot_.timeouts = &stats_.counterSlot("solver.timeouts");
    hot_.branchShortCircuits =
        &stats_.counterSlot("solver.branch_short_circuits");
    hot_.absintPrunes = &stats_.counterSlot("absint.static_prunes");
    hot_.absintStaticSat = &stats_.counterSlot("absint.static_sat");
    hot_.absintStaticUnsat = &stats_.counterSlot("absint.static_unsat");
    hot_.absintSimplifyFolds = &stats_.counterSlot("absint.simplify_folds");
    hot_.absintRangeSeeds = &stats_.counterSlot("absint.range_seeds");
    hot_.absintDisagreements = &stats_.counterSlot("absint.disagreements");
    hot_.absintUnknownRescues =
        &stats_.counterSlot("absint.unknown_rescues");
    absint_.bindCounters(&stats_.counterSlot("absint.facts_computed"),
                         &stats_.counterSlot("absint.fact_reuses"),
                         &stats_.counterSlot("absint.fixpoint_iters"));
    hot_.time = &stats_.timerSlot("solver.time");
    hot_.simplifyTime = &stats_.timerSlot("solver.simplify_time");
    hot_.satTime = &stats_.timerSlot("solver.sat_time");
}

void
Solver::setFaultPolicy(const FaultPolicy &policy)
{
    faultPolicy_ = policy;
    faultRng_ = Rng(policy.seed);
    queryCounter_ = 0; // trigger indices are relative to installation
}

bool
Solver::faultTriggers(uint64_t query_index)
{
    if (!faultPolicy_.enabled)
        return false;
    for (uint64_t t : faultPolicy_.triggerQueries)
        if (t == query_index)
            return true;
    // Advance the RNG only when rate-based injection is on, so explicit
    // trigger lists stay deterministic regardless of query volume.
    if (faultPolicy_.unknownRate > 0.0 &&
        faultRng_.chance(faultPolicy_.unknownRate))
        return true;
    return false;
}

std::vector<ExprRef>
Solver::sliceIndependent(const std::vector<ExprRef> &constraints,
                         ExprRef query)
{
    if (!opts_.useIndependence)
        return constraints;

    // Transitive closure of variable sharing, seeded by the query.
    std::vector<std::unordered_set<uint64_t>> cvars;
    cvars.reserve(constraints.size());
    for (ExprRef c : constraints)
        cvars.push_back(varsOf(c));

    std::unordered_set<uint64_t> active = varsOf(query);
    std::vector<bool> included(constraints.size(), false);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < constraints.size(); ++i) {
            if (included[i])
                continue;
            bool touches = false;
            for (uint64_t v : cvars[i]) {
                if (active.count(v)) {
                    touches = true;
                    break;
                }
            }
            if (touches) {
                included[i] = true;
                changed = true;
                for (uint64_t v : cvars[i])
                    active.insert(v);
            }
        }
    }

    std::vector<ExprRef> out;
    for (size_t i = 0; i < constraints.size(); ++i)
        if (included[i])
            out.push_back(constraints[i]);
    *hot_.constraintsSlicedAway += constraints.size() - out.size();
    return out;
}

bool
Solver::tryCachedModels(const std::vector<ExprRef> &constraints,
                        ExprRef query, Assignment *model)
{
    if (!opts_.useModelCache)
        return false;
    const Assignment *hit =
        recentModels_.findNewestFirst([&](const Assignment &a) {
            if (!expr::evaluateBool(query, a))
                return false;
            for (ExprRef c : constraints)
                if (!expr::evaluateBool(c, a))
                    return false;
            return true;
        });
    if (!hit)
        return false;
    (*hot_.modelCacheHits)++;
    if (model) {
        // Extend-and-verify. Cached models can be partial relative to
        // this query's constraint set (getValue caches models over its
        // *sliced* variables), and evaluation above verified them by
        // treating every absent variable as 0 — so the zero-extension
        // is the assignment that was actually validated. Materialize
        // those zeros: returning the partial model as-is would break
        // the contract that a model covers every constraint variable
        // (consumers treating absent variables as unconstrained could
        // emit invalid test cases).
        Assignment extended = *hit;
        std::unordered_set<uint64_t> vars;
        std::unordered_set<ExprRef> seen;
        collectVars(query, vars, seen);
        for (ExprRef c : constraints)
            collectVars(c, vars, seen);
        for (uint64_t id : vars)
            if (!extended.has(id))
                extended.setById(id, 0);
        *model = std::move(extended);
    }
    return true;
}

QueryOutcome
Solver::solveSat(const std::vector<ExprRef> &constraints, ExprRef query,
                 Assignment *model)
{
    obs::PhaseSpan span(profiler_, obs::Phase::Solver);
    (*hot_.queries)++;
    ++queryCounter_;

    QueryOutcome out;
    const auto start = std::chrono::steady_clock::now();
    // Record wall time + high-water latency on every exit path.
    struct Finalize {
        QueryOutcome &out;
        HotStats &hot;
        std::chrono::steady_clock::time_point start;
        ~Finalize()
        {
            out.micros = microsSince(start);
            *hot.time += static_cast<double>(out.micros) * 1e-6;
            Stats::raiseTo(*hot.maxQueryMicros, out.micros);
            if (out.result == CheckResult::Unknown)
                (*hot.unknownResults)++;
        }
    } finalize{out, hot_, start};

    // Deterministic fault injection: the shim sits in front of the
    // whole pipeline so every call site sees a realistic Unknown.
    if (faultTriggers(queryCounter_)) {
        (*hot_.faultsInjected)++;
        out.result = CheckResult::Unknown;
        out.timedOut = true; // presents as a wall-clock timeout
        return out;
    }

    // Simplification pass.
    ExprRef q = query;
    std::vector<ExprRef> cs(constraints);
    if (opts_.useSimplifier) {
        ScopedTimer st(*hot_.simplifyTime);
        q = simplifier_.simplify(q);
        for (auto &c : cs)
            c = simplifier_.simplify(c);
    }

    // Constant fast paths.
    if (q->isFalse()) {
        out.result = CheckResult::Unsat;
        return out;
    }
    bool any_false = false;
    for (ExprRef c : cs)
        if (c->isFalse())
            any_false = true;
    if (any_false) {
        out.result = CheckResult::Unsat;
        return out;
    }
    cs.erase(std::remove_if(cs.begin(), cs.end(),
                            [](ExprRef c) { return c->isTrue(); }),
             cs.end());

    // Known-bits fast path on the query alone (sound only when there
    // are no constraints left that could contradict).
    if (cs.empty() && q->isTrue()) {
        if (model)
            *model = Assignment();
        out.result = CheckResult::Sat;
        return out;
    }

    // Static feasibility pre-check (abstract interpretation over the
    // constraint set). Sits after the fault shim and the constant fast
    // paths — query numbering and trivial answers are untouched — and
    // before slicing, which a static verdict makes unnecessary.
    ExprRef sat_q = q;
    if (opts_.useAbsint && !model && !cs.empty()) {
        std::shared_ptr<expr::absint::Facts> facts = absint_.analyze(cs);
        std::optional<CheckResult> verdict;
        if (!facts->bottom) {
            // Bottom facts mean the constraint set itself is statically
            // contradictory; the engine's path invariant rules that out,
            // so rather than guess whose contract is broken we punt to
            // the SAT tail. Otherwise, abstractly evaluate the query.
            const expr::absint::AbsValue v = absint_.eval(q, *facts);
            if (!v.isBottom() && v.isConstant()) {
                if (v.constantValue() == 0) {
                    // No model of cs can make q true: cs && q is Unsat.
                    // Sound unconditionally (over-approximation).
                    verdict = CheckResult::Unsat;
                } else if (opts_.useIndependence) {
                    // Every model of cs makes q true, and the
                    // satisfiable-set invariant (the contract slicing
                    // states) guarantees cs has one.
                    verdict = CheckResult::Sat;
                }
            }
            if (!verdict) {
                // Facts-aware query simplification: constraint-derived
                // bits can fold subterms context-free simplification
                // cannot. Applied only to the query — simplifying
                // constraints under their own facts would be
                // self-justifying.
                simplifier_.setFacts(facts.get());
                ExprRef q2 = simplifier_.simplify(q);
                simplifier_.setFacts(nullptr);
                if (q2->isFalse()) {
                    verdict = CheckResult::Unsat;
                    (*hot_.absintSimplifyFolds)++;
                } else if (q2->isTrue() && opts_.useIndependence) {
                    verdict = CheckResult::Sat;
                    (*hot_.absintSimplifyFolds)++;
                } else if (!q2->isTrue()) {
                    // q2 agrees with q pointwise on every model of cs,
                    // so the SAT tail may decide the simpler query.
                    sat_q = q2;
                }
            }
        }
        if (verdict) {
            (*hot_.absintPrunes)++;
            if (*verdict == CheckResult::Sat)
                (*hot_.absintStaticSat)++;
            else
                (*hot_.absintStaticUnsat)++;
            out.result = *verdict;
            if (opts_.verifyAbsint) {
                // Differential oracle: the full pipeline must agree
                // with the static verdict. A solver give-up is not a
                // disagreement — the static answer rescues it.
                QueryOutcome oracle;
                solveSatPipeline(cs, q, nullptr, oracle);
                out.conflicts += oracle.conflicts;
                out.retries += oracle.retries;
                if (oracle.isUnknown()) {
                    (*hot_.absintUnknownRescues)++;
                } else if (oracle.result != *verdict) {
                    (*hot_.absintDisagreements)++;
                    S2E_ASSERT(false,
                               "absint verdict disagrees with solver");
                }
            }
            return out;
        }
    }

    solveSatPipeline(cs, sat_q, model, out);
    if (sat_q != q && opts_.verifyAbsint) {
        // Oracle for the facts-simplified query: the original must
        // decide the same way (Unknown on either side proves nothing).
        QueryOutcome oracle;
        solveSatPipeline(cs, q, nullptr, oracle);
        out.conflicts += oracle.conflicts;
        out.retries += oracle.retries;
        if (!oracle.isUnknown() && !out.isUnknown() &&
            oracle.result != out.result) {
            (*hot_.absintDisagreements)++;
            S2E_ASSERT(false,
                       "facts-simplified query disagrees with original");
        }
    }
    return out;
}

void
Solver::solveSatPipeline(const std::vector<ExprRef> &cs, ExprRef q,
                         Assignment *model, QueryOutcome &out)
{
    // Independence slicing. Skipped when the caller wants a model:
    // a model must satisfy the *entire* constraint set, including
    // constraints unrelated to the query expression.
    std::vector<ExprRef> sliced =
        model ? cs : sliceIndependent(cs, q);

    // Model cache.
    if (tryCachedModels(sliced, q, model)) {
        (*hot_.cacheSat)++;
        out.result = CheckResult::Sat;
        return;
    }

    // Full SAT solving — through the path's persistent incremental
    // context when one is bound, otherwise via a throwaway pair.
    (*hot_.satQueries)++;
    ScopedTimer sat_timer(*hot_.satTime);

    IncrementalContext *ctx = nullptr;
    if (opts_.useIncremental && ctxSlot_) {
        auto &slot = *ctxSlot_;
        // High-water eviction bounds the context's memory: a path
        // whose accumulated gates/clauses outgrow the limits restarts
        // from an empty context holding just this query's slice. Also
        // covers the (unreachable by construction: the guarded clause
        // database is always satisfiable) permanent-conflict case,
        // where reuse would turn every future answer into Unsat.
        if (slot && (slot->overBudget(opts_.maxCtxGates,
                                      opts_.maxCtxClauses) ||
                     slot->sat().inConflict())) {
            slot.reset();
            (*hot_.ctxEvictions)++;
        }
        if (slot)
            (*hot_.ctxReuses)++;
        else
            slot = std::make_shared<IncrementalContext>();
        ctx = slot.get();
    }

    std::optional<sat::SatSolver> freshSat;
    std::optional<BitBlaster> freshBlaster;
    sat::SatSolver *sat;
    BitBlaster *blaster;
    std::vector<sat::Lit> assumptions;
    if (ctx) {
        // Select the active constraint set: one activation literal
        // per sliced constraint plus one for the query expression.
        // Slicing stays sound under assumptions because unselected
        // constraints' guards are free — the solver can switch them
        // off, so they cannot restrict the selected subset.
        uint64_t saved = 0;
        for (ExprRef c : sliced)
            assumptions.push_back(ctx->guardFor(c, &saved));
        assumptions.push_back(ctx->guardFor(q, &saved));
        *hot_.gatesSaved += saved;
        sat = &ctx->sat();
        blaster = &ctx->blaster();
    } else {
        freshSat.emplace();
        freshBlaster.emplace(*freshSat);
        sat = &*freshSat;
        blaster = &*freshBlaster;
        for (ExprRef c : sliced)
            blaster->assertTrue(c);
        blaster->assertTrue(q);
        if (sat->inConflict()) {
            out.result = CheckResult::Unsat;
            return;
        }
    }

    // Solve under the per-query budget, retrying with an escalated
    // budget on Unknown. The SatSolver keeps its learnt clauses across
    // solve() calls, so a retry resumes the proof instead of redoing it.
    QueryBudget budget{opts_.maxConflicts, opts_.maxMicros};
    sat::SatResult res;
    uint64_t decisions_before = sat->numDecisions();
    for (;;) {
        uint64_t before = sat->numConflicts();
        res = sat->solve(assumptions, budget);
        out.conflicts += sat->numConflicts() - before;
        if (res != sat::SatResult::Unknown)
            break;
        if (out.retries >= opts_.maxRetries || budget.unlimited())
            break;
        ++out.retries;
        (*hot_.retries)++;
        budget = budget.escalated(opts_.retryMultiplier);
    }
    *hot_.satConflicts += out.conflicts;
    *hot_.satDecisions += sat->numDecisions() - decisions_before;
    Stats::raiseTo(*hot_.maxGates, blaster->numGates());

    switch (res) {
      case sat::SatResult::Unsat:
        out.result = CheckResult::Unsat;
        return;
      case sat::SatResult::Unknown:
        out.result = CheckResult::Unknown;
        out.timedOut = sat->lastStopWasDeadline();
        if (out.timedOut)
            (*hot_.timeouts)++;
        return;
      case sat::SatResult::Sat: {
        Assignment a;
        if (ctx) {
            // The context's varBits span every expression ever blasted
            // on this path; variables outside the active set carry
            // arbitrary values (their constraints were switched off).
            // Restrict the model to this query's own variables.
            std::unordered_set<uint64_t> vars;
            std::unordered_set<ExprRef> seen;
            collectVars(q, vars, seen);
            for (ExprRef c : sliced)
                collectVars(c, vars, seen);
            const auto &var_bits = blaster->varBits();
            for (uint64_t id : vars) {
                auto it = var_bits.find(id);
                if (it == var_bits.end())
                    continue; // simplified away while blasting
                uint64_t v = 0;
                for (size_t i = 0; i < it->second.size(); ++i)
                    if (sat->modelTrue(it->second[i]))
                        v |= 1ULL << i;
                a.setById(id, v);
            }
        } else {
            for (const auto &[var_id, bits] : blaster->varBits()) {
                uint64_t v = 0;
                for (size_t i = 0; i < bits.size(); ++i)
                    if (sat->modelTrue(bits[i]))
                        v |= 1ULL << i;
                a.setById(var_id, v);
            }
        }
        if (opts_.useModelCache)
            recentModels_.insert(a);
        if (model)
            *model = std::move(a);
        out.result = CheckResult::Sat;
        return;
      }
    }
    panic("unreachable");
}

QueryOutcome
Solver::checkSat(const std::vector<ExprRef> &constraints, ExprRef query,
                 Assignment *model)
{
    return solveSat(constraints, query, model);
}

QueryOutcome
Solver::mayBeTrue(const std::vector<ExprRef> &constraints, ExprRef query)
{
    return checkSat(constraints, query);
}

QueryOutcome
Solver::mustBeTrue(const std::vector<ExprRef> &constraints, ExprRef query)
{
    // must(q) == !may(!q): remap the inner check's answer, keeping
    // Unknown as Unknown (a timed-out refutation proves nothing).
    QueryOutcome inner = checkSat(constraints, builder_.lnot(query));
    QueryOutcome out = inner;
    switch (inner.result) {
      case CheckResult::Unsat: out.result = CheckResult::Sat; break;
      case CheckResult::Sat: out.result = CheckResult::Unsat; break;
      case CheckResult::Unknown: break;
    }
    return out;
}

Solver::BranchFeasibility
Solver::checkBranch(const std::vector<ExprRef> &constraints, ExprRef cond)
{
    BranchFeasibility f;
    f.trueSide = mayBeTrue(constraints, cond);
    // If the true side is *definitely* infeasible, the false side must
    // be feasible (path invariants keep the constraint set satisfiable)
    // and the second query can be skipped. An Unknown true side proves
    // nothing — never short-circuit on it.
    if (f.trueSide.isUnsat()) {
        f.falseSide.result = CheckResult::Sat;
        (*hot_.branchShortCircuits)++;
        return f;
    }
    f.falseSide = mayBeTrue(constraints, builder_.lnot(cond));
    return f;
}

QueryOutcome
Solver::getValue(const std::vector<ExprRef> &constraints, ExprRef query,
                 uint64_t *value)
{
    if (query->isConstant()) {
        if (value)
            *value = query->value();
        QueryOutcome out;
        out.result = CheckResult::Sat;
        return out;
    }
    // Slice to the constraints transitively sharing variables with
    // the query: a value feasible under the slice is feasible under
    // the full set (independent constraints cannot restrict it, given
    // the path invariant that the full set is satisfiable). Without
    // this, concretization cost grows with the whole path history.
    std::vector<ExprRef> sliced = sliceIndependent(constraints, query);
    Assignment model;
    QueryOutcome out = solveSat(sliced, builder_.trueExpr(), &model);
    if (out.isSat() && value)
        *value = expr::evaluate(query, model);
    return out;
}

QueryOutcome
Solver::getInitialValues(const std::vector<ExprRef> &constraints,
                         Assignment *model)
{
    Assignment a;
    QueryOutcome out = checkSat(constraints, builder_.trueExpr(), &a);
    if (out.isSat() && model)
        *model = std::move(a);
    return out;
}

QueryOutcome
Solver::getRange(const std::vector<ExprRef> &constraints, ExprRef query,
                 uint64_t *min_out, uint64_t *max_out)
{
    QueryOutcome agg;
    if (query->isConstant()) {
        if (min_out)
            *min_out = query->value();
        if (max_out)
            *max_out = query->value();
        agg.result = CheckResult::Sat;
        return agg;
    }
    unsigned w = query->width();

    // Any sub-query giving up poisons the whole range: a bound derived
    // from an Unknown answer could exclude feasible values.
    bool unknown = false;
    auto feasible_le = [&](uint64_t bound) {
        QueryOutcome sub = mayBeTrue(
            constraints, builder_.ule(query, builder_.constant(bound, w)));
        accumulate(agg, sub);
        if (sub.isUnknown())
            unknown = true;
        return sub.yes();
    };
    auto feasible_ge = [&](uint64_t bound) {
        QueryOutcome sub = mayBeTrue(
            constraints, builder_.uge(query, builder_.constant(bound, w)));
        accumulate(agg, sub);
        if (sub.isUnknown())
            unknown = true;
        return sub.yes();
    };

    QueryOutcome base = mayBeTrue(constraints, builder_.trueExpr());
    accumulate(agg, base);
    if (!base.isSat()) {
        agg.result = base.result;
        return agg;
    }

    // Static seeding: abstract interpretation bounds the search window
    // before the first SAT call. The true min/max lie inside
    // [umin, umax] (the abstraction over-approximates the model set),
    // so a narrowed window converges to the same answers with fewer
    // feasibility probes.
    uint64_t search_lo = 0, search_hi = lowMask(w);
    if (opts_.useAbsint && !constraints.empty()) {
        std::shared_ptr<expr::absint::Facts> facts =
            absint_.analyze(constraints);
        if (!facts->bottom) {
            const expr::absint::AbsValue v = absint_.eval(query, *facts);
            if (!v.isBottom() && (v.umin > 0 || v.umax < lowMask(w))) {
                search_lo = v.umin;
                search_hi = v.umax;
                (*hot_.absintRangeSeeds)++;
            }
        }
    }

    // Binary search for the minimum.
    uint64_t lo = search_lo, hi = search_hi;
    while (lo < hi && !unknown) {
        uint64_t mid = lo + (hi - lo) / 2;
        if (feasible_le(mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    if (unknown) {
        agg.result = CheckResult::Unknown;
        return agg;
    }
    uint64_t min_v = lo;

    lo = min_v;
    hi = search_hi;
    while (lo < hi && !unknown) {
        uint64_t mid = lo + (hi - lo + 1) / 2;
        if (feasible_ge(mid))
            lo = mid;
        else
            hi = mid - 1;
    }
    if (unknown) {
        agg.result = CheckResult::Unknown;
        return agg;
    }
    if (min_out)
        *min_out = min_v;
    if (max_out)
        *max_out = lo;
    agg.result = CheckResult::Sat;
    return agg;
}

} // namespace s2e::solver
