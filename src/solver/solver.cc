#include "solver/solver.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/bitops.hh"

#include "solver/bitblast.hh"
#include "support/logging.hh"

namespace s2e::solver {

using expr::Kind;

namespace {

/** Collect variable ids appearing in an expression. */
void
collectVars(ExprRef e, std::unordered_set<uint64_t> &vars,
            std::unordered_set<ExprRef> &seen)
{
    if (!seen.insert(e).second)
        return;
    if (e->isVariable()) {
        vars.insert(e->varId());
        return;
    }
    for (unsigned i = 0; i < e->arity(); ++i)
        collectVars(e->kid(i), vars, seen);
}

std::unordered_set<uint64_t>
varsOf(ExprRef e)
{
    std::unordered_set<uint64_t> vars;
    std::unordered_set<ExprRef> seen;
    collectVars(e, vars, seen);
    return vars;
}

} // namespace

Solver::Solver(expr::ExprBuilder &builder, SolverOptions opts)
    : builder_(builder), simplifier_(builder), opts_(opts)
{
}

std::vector<ExprRef>
Solver::sliceIndependent(const std::vector<ExprRef> &constraints,
                         ExprRef query)
{
    if (!opts_.useIndependence)
        return constraints;

    // Transitive closure of variable sharing, seeded by the query.
    std::vector<std::unordered_set<uint64_t>> cvars;
    cvars.reserve(constraints.size());
    for (ExprRef c : constraints)
        cvars.push_back(varsOf(c));

    std::unordered_set<uint64_t> active = varsOf(query);
    std::vector<bool> included(constraints.size(), false);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < constraints.size(); ++i) {
            if (included[i])
                continue;
            bool touches = false;
            for (uint64_t v : cvars[i]) {
                if (active.count(v)) {
                    touches = true;
                    break;
                }
            }
            if (touches) {
                included[i] = true;
                changed = true;
                for (uint64_t v : cvars[i])
                    active.insert(v);
            }
        }
    }

    std::vector<ExprRef> out;
    for (size_t i = 0; i < constraints.size(); ++i)
        if (included[i])
            out.push_back(constraints[i]);
    stats_.add("solver.constraints_sliced_away",
               constraints.size() - out.size());
    return out;
}

bool
Solver::tryCachedModels(const std::vector<ExprRef> &constraints,
                        ExprRef query, Assignment *model)
{
    if (!opts_.useModelCache)
        return false;
    for (auto it = recentModels_.rbegin(); it != recentModels_.rend(); ++it) {
        const Assignment &a = *it;
        if (!expr::evaluateBool(query, a))
            continue;
        bool all = true;
        for (ExprRef c : constraints) {
            if (!expr::evaluateBool(c, a)) {
                all = false;
                break;
            }
        }
        if (all) {
            stats_.add("solver.model_cache_hits");
            if (model)
                *model = a;
            return true;
        }
    }
    return false;
}

CheckResult
Solver::solveSat(const std::vector<ExprRef> &constraints, ExprRef query,
                 Assignment *model)
{
    stats_.add("solver.queries");
    ScopedTimer timer(stats_, "solver.time");

    // Simplification pass.
    ExprRef q = query;
    std::vector<ExprRef> cs(constraints);
    if (opts_.useSimplifier) {
        ScopedTimer st(stats_, "solver.simplify_time");
        q = simplifier_.simplify(q);
        for (auto &c : cs)
            c = simplifier_.simplify(c);
    }

    // Constant fast paths.
    if (q->isFalse())
        return CheckResult::Unsat;
    bool any_false = false;
    for (ExprRef c : cs)
        if (c->isFalse())
            any_false = true;
    if (any_false)
        return CheckResult::Unsat;
    cs.erase(std::remove_if(cs.begin(), cs.end(),
                            [](ExprRef c) { return c->isTrue(); }),
             cs.end());

    // Known-bits fast path on the query alone (sound only when there
    // are no constraints left that could contradict).
    if (cs.empty() && q->isTrue()) {
        if (model)
            *model = Assignment();
        return CheckResult::Sat;
    }

    // Independence slicing. Skipped when the caller wants a model:
    // a model must satisfy the *entire* constraint set, including
    // constraints unrelated to the query expression.
    std::vector<ExprRef> sliced =
        model ? cs : sliceIndependent(cs, q);

    // Model cache.
    if (tryCachedModels(sliced, q, model)) {
        stats_.add("solver.cache_sat");
        return CheckResult::Sat;
    }

    // Full SAT solving.
    stats_.add("solver.sat_queries");
    ScopedTimer sat_timer(stats_, "solver.sat_time");
    sat::SatSolver sat;
    BitBlaster blaster(sat);
    for (ExprRef c : sliced)
        blaster.assertTrue(c);
    blaster.assertTrue(q);
    if (sat.inConflict())
        return CheckResult::Unsat;

    sat::SatResult res = sat.solve({}, opts_.maxConflicts);
    stats_.add("solver.sat_conflicts", sat.numConflicts());
    stats_.add("solver.sat_decisions", sat.numDecisions());
    stats_.high("solver.max_gates", blaster.numGates());

    switch (res) {
      case sat::SatResult::Unsat:
        return CheckResult::Unsat;
      case sat::SatResult::Unknown:
        stats_.add("solver.unknown_results");
        return CheckResult::Unknown;
      case sat::SatResult::Sat: {
        Assignment a;
        for (const auto &[var_id, bits] : blaster.varBits()) {
            uint64_t v = 0;
            for (size_t i = 0; i < bits.size(); ++i)
                if (sat.modelTrue(bits[i]))
                    v |= 1ULL << i;
            a.setById(var_id, v);
        }
        if (opts_.useModelCache) {
            recentModels_.push_back(a);
            if (recentModels_.size() > 64)
                recentModels_.erase(recentModels_.begin());
        }
        if (model)
            *model = std::move(a);
        return CheckResult::Sat;
      }
    }
    panic("unreachable");
}

CheckResult
Solver::checkSat(const std::vector<ExprRef> &constraints, ExprRef query,
                 Assignment *model)
{
    return solveSat(constraints, query, model);
}

bool
Solver::mayBeTrue(const std::vector<ExprRef> &constraints, ExprRef query)
{
    return checkSat(constraints, query) == CheckResult::Sat;
}

bool
Solver::mustBeTrue(const std::vector<ExprRef> &constraints, ExprRef query)
{
    return checkSat(constraints, builder_.lnot(query)) == CheckResult::Unsat;
}

Solver::BranchFeasibility
Solver::checkBranch(const std::vector<ExprRef> &constraints, ExprRef cond)
{
    BranchFeasibility f;
    f.trueFeasible = mayBeTrue(constraints, cond);
    // If true is infeasible, false must be feasible (assuming the
    // constraint set itself is satisfiable, which path invariants
    // guarantee); skip the second query.
    if (!f.trueFeasible) {
        f.falseFeasible = true;
        stats_.add("solver.branch_short_circuits");
        return f;
    }
    f.falseFeasible = mayBeTrue(constraints, builder_.lnot(cond));
    return f;
}

std::optional<uint64_t>
Solver::getValue(const std::vector<ExprRef> &constraints, ExprRef query)
{
    if (query->isConstant())
        return query->value();
    // Slice to the constraints transitively sharing variables with
    // the query: a value feasible under the slice is feasible under
    // the full set (independent constraints cannot restrict it, given
    // the path invariant that the full set is satisfiable). Without
    // this, concretization cost grows with the whole path history.
    std::vector<ExprRef> sliced = sliceIndependent(constraints, query);
    Assignment model;
    CheckResult res = solveSat(sliced, builder_.trueExpr(), &model);
    if (res != CheckResult::Sat)
        return std::nullopt;
    return expr::evaluate(query, model);
}

std::optional<Assignment>
Solver::getInitialValues(const std::vector<ExprRef> &constraints)
{
    Assignment model;
    CheckResult res = checkSat(constraints, builder_.trueExpr(), &model);
    if (res != CheckResult::Sat)
        return std::nullopt;
    return model;
}

std::optional<std::pair<uint64_t, uint64_t>>
Solver::getRange(const std::vector<ExprRef> &constraints, ExprRef query)
{
    if (query->isConstant())
        return std::make_pair(query->value(), query->value());
    unsigned w = query->width();

    auto feasible_le = [&](uint64_t bound) {
        return mayBeTrue(constraints,
                         builder_.ule(query, builder_.constant(bound, w)));
    };
    auto feasible_ge = [&](uint64_t bound) {
        return mayBeTrue(constraints,
                         builder_.uge(query, builder_.constant(bound, w)));
    };

    if (!mayBeTrue(constraints, builder_.trueExpr()))
        return std::nullopt;

    // Binary search for the minimum.
    uint64_t lo = 0, hi = lowMask(w);
    while (lo < hi) {
        uint64_t mid = lo + (hi - lo) / 2;
        if (feasible_le(mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    uint64_t min_v = lo;

    lo = min_v;
    hi = lowMask(w);
    while (lo < hi) {
        uint64_t mid = lo + (hi - lo + 1) / 2;
        if (feasible_ge(mid))
            lo = mid;
        else
            hi = mid - 1;
    }
    return std::make_pair(min_v, lo);
}

} // namespace s2e::solver
