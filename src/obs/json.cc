#include "obs/json.hh"

#include <cmath>
#include <cstdio>

namespace s2e::obs {

std::string
JsonWriter::quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

void
JsonWriter::separate()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already emitted "name":
    }
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ',';
        needComma_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += '}';
    needComma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += ']';
    needComma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separate();
    out_ += quote(name);
    out_ += ':';
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    separate();
    out_ += quote(s);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(double d)
{
    separate();
    if (!std::isfinite(d)) {
        out_ += "null"; // JSON has no inf/nan
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", d);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t u)
{
    separate();
    out_ += std::to_string(u);
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t i)
{
    separate();
    out_ += std::to_string(i);
    return *this;
}

JsonWriter &
JsonWriter::value(bool b)
{
    separate();
    out_ += b ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out_ += "null";
    return *this;
}

} // namespace s2e::obs
