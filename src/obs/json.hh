/**
 * @file
 * Minimal JSON emitter for observability exports (RunReport, fork
 * tree). Hand-rolled on purpose: the repo takes no third-party
 * dependencies, and the writers here only need objects, arrays,
 * strings, bools and finite numbers. Commas and quoting are managed
 * by a nesting stack so callers cannot emit malformed documents by
 * forgetting separators.
 */

#ifndef S2E_OBS_JSON_HH
#define S2E_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace s2e::obs {

/** Streaming JSON writer with automatic separators. */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next emitted value belongs to it. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(double d);
    JsonWriter &value(uint64_t u);
    JsonWriter &value(int64_t i);
    JsonWriter &value(int i) { return value(static_cast<int64_t>(i)); }
    JsonWriter &value(unsigned u) { return value(static_cast<uint64_t>(u)); }
    JsonWriter &value(bool b);
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    const std::string &str() const { return out_; }

    /** Escape one string into a quoted JSON literal. */
    static std::string quote(const std::string &s);

  private:
    void separate();

    std::string out_;
    std::vector<bool> needComma_; ///< one flag per open container
    bool pendingKey_ = false;
};

} // namespace s2e::obs

#endif // S2E_OBS_JSON_HH
