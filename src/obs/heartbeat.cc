#include "obs/heartbeat.hh"

#include "support/logging.hh"

namespace s2e::obs {

Heartbeat::Heartbeat(core::Engine &engine, Config config)
    : engine_(engine), config_(config),
      start_(std::chrono::steady_clock::now()), lastTime_(start_)
{
    if (config_.everyBlocks == 0)
        config_.everyBlocks = 1;
    blockHandle_ = engine_.events().onBlockExecute.subscribe(
        [this](core::ExecutionState &, const dbt::TranslationBlock &tb) {
            blocks_++;
            instructions_ += tb.instrPcs.size();
            if (blocks_ % config_.everyBlocks == 0)
                beat();
        });
}

Heartbeat::~Heartbeat()
{
    engine_.events().onBlockExecute.unsubscribe(blockHandle_);
}

void
Heartbeat::beat()
{
    auto now = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(now - start_).count();
    double interval = std::chrono::duration<double>(now - lastTime_).count();

    uint64_t forks = engine_.stats().get("engine.forks");
    double solverSecs = engine_.solver().stats().seconds("solver.time");

    HeartbeatRecord rec;
    rec.blocks = blocks_;
    rec.instructions = instructions_;
    rec.activeStates = engine_.activeStates().size();
    rec.wallSeconds = wall;
    if (interval > 0) {
        rec.instrPerSec =
            static_cast<double>(instructions_ - lastInstructions_) / interval;
        rec.forksPerSec = static_cast<double>(forks - lastForks_) / interval;
        rec.solverFraction = (solverSecs - lastSolverSeconds_) / interval;
    }
    rec.memHighWatermark = engine_.stats().get("engine.memory_high_watermark");
    records_.push_back(rec);

    if (config_.log) {
        inform("heartbeat: %llu blocks, %zu active states, %.0f instr/s, "
               "%.1f forks/s, %.1f%% solver, %llu B mem high",
               static_cast<unsigned long long>(rec.blocks), rec.activeStates,
               rec.instrPerSec, rec.forksPerSec, rec.solverFraction * 100.0,
               static_cast<unsigned long long>(rec.memHighWatermark));
    }

    lastTime_ = now;
    lastInstructions_ = instructions_;
    lastForks_ = forks;
    lastSolverSeconds_ = solverSecs;
}

} // namespace s2e::obs
