/**
 * @file
 * Fork-tree recorder: reconstructs the exploration tree of one run
 * for debugging path explosion and solver degradation. Subscribes to
 * onExecutionFork / onStateKill / onSolverDegraded and captures, per
 * state, the parent id, the guest pc of the fork, the rendered branch
 * condition and the terminal status. Exportable as DOT (graphviz) and
 * JSON (`s2e.fork_tree.v1`).
 */

#ifndef S2E_OBS_FORKTREE_HH
#define S2E_OBS_FORKTREE_HH

#include <map>
#include <string>
#include <vector>

#include "core/events.hh"

namespace s2e::obs {

/** One state's record in the exploration tree. */
struct ForkNode {
    int id = 0;
    int parent = -1;        ///< -1 for the root
    uint32_t forkPc = 0;    ///< guest pc at the fork that created it
    std::string condition;  ///< rendered branch constraint (truncated)
    std::vector<int> children;
    bool finished = false;
    std::string status;     ///< stateStatusName() at kill time
    std::string statusMessage;
    uint64_t instructions = 0;
    bool degraded = false;
    uint32_t degradeEvents = 0;
};

/**
 * Observer over an EventHub. Detaches cleanly in the destructor via
 * Signal::unsubscribe, so a recorder may have a narrower lifetime
 * than the engine it watches.
 */
class ForkTreeRecorder
{
  public:
    explicit ForkTreeRecorder(core::EventHub &events);
    ~ForkTreeRecorder();
    ForkTreeRecorder(const ForkTreeRecorder &) = delete;
    ForkTreeRecorder &operator=(const ForkTreeRecorder &) = delete;

    const std::map<int, ForkNode> &nodes() const { return nodes_; }
    size_t forkCount() const { return forks_; }

    /** Graphviz rendering: one node per state, edges labeled with the
     *  branch condition that separated child from parent. */
    std::string toDot() const;

    /** JSON rendering (schema `s2e.fork_tree.v1`). */
    std::string toJson() const;

  private:
    ForkNode &ensure(int id);

    core::EventHub &events_;
    size_t forkHandle_;
    size_t killHandle_;
    size_t degradeHandle_;
    std::map<int, ForkNode> nodes_;
    size_t forks_ = 0;
};

} // namespace s2e::obs

#endif // S2E_OBS_FORKTREE_HH
