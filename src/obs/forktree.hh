/**
 * @file
 * Fork-tree recorder: reconstructs the exploration tree of one run
 * for debugging path explosion and solver degradation. Subscribes to
 * onExecutionFork / onStateKill / onSolverDegraded and captures, per
 * state, the parent id, the guest pc of the fork, the rendered branch
 * condition and the terminal status. Exportable as DOT (graphviz) and
 * JSON (`s2e.fork_tree.v1`).
 */

#ifndef S2E_OBS_FORKTREE_HH
#define S2E_OBS_FORKTREE_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/events.hh"

namespace s2e::obs {

/** One state's record in the exploration tree. */
struct ForkNode {
    int id = 0;
    int parent = -1;        ///< -1 for the root
    std::string pathId;     ///< schedule-independent identity ("0.2.1")
    uint32_t forkPc = 0;    ///< guest pc at the fork that created it
    std::string condition;  ///< rendered branch constraint (truncated)
    std::vector<int> children;
    bool finished = false;
    std::string status;     ///< stateStatusName() at kill time
    std::string statusMessage;
    uint64_t instructions = 0;
    bool degraded = false;
    uint32_t degradeEvents = 0;
};

/**
 * Observer over an EventHub. Detaches cleanly in the destructor via
 * Signal::unsubscribe, so a recorder may have a narrower lifetime
 * than the engine it watches.
 */
class ForkTreeRecorder
{
  public:
    explicit ForkTreeRecorder(core::EventHub &events);
    ~ForkTreeRecorder();
    ForkTreeRecorder(const ForkTreeRecorder &) = delete;
    ForkTreeRecorder &operator=(const ForkTreeRecorder &) = delete;

    /** Snapshot accessors; take them only while the engine is
     *  quiescent (between run() calls) for a consistent view. */
    std::map<int, ForkNode> nodes() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return nodes_;
    }
    size_t forkCount() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return forks_;
    }

    /** Graphviz rendering: one node per state, edges labeled with the
     *  branch condition that separated child from parent. */
    std::string toDot() const;

    /** JSON rendering (schema `s2e.fork_tree.v1`), keyed by runtime
     *  state id. Node numbering depends on worker scheduling. */
    std::string toJson() const;

    /**
     * Canonical JSON rendering (schema `s2e.fork_tree.v1`): nodes
     * keyed and sorted by deterministic path id, runtime state ids
     * omitted, children sorted. A parallel run's canonical tree is
     * byte-identical to the serial run's (tests/test_parallel.cc).
     */
    std::string toCanonicalJson() const;

  private:
    /** Requires mu_ held. */
    ForkNode &ensure(int id);

    core::EventHub &events_;
    size_t forkHandle_;
    size_t killHandle_;
    size_t degradeHandle_;
    /** Guards nodes_ and forks_: fork/kill/degrade events fire
     *  concurrently from every worker in a parallel run. */
    mutable std::mutex mu_;
    std::map<int, ForkNode> nodes_;
    size_t forks_ = 0;
};

} // namespace s2e::obs

#endif // S2E_OBS_FORKTREE_HH
