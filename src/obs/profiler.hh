/**
 * @file
 * Phase profiler: nestable RAII spans over the engine's execution
 * phases (translate / concrete-exec / symbolic-exec / solver / fork)
 * with handle-based O(1) accounting — the observability backbone that
 * reproduces the paper's Fig 9 time-fraction breakdown per run.
 *
 * Accounting is *exclusive*: a span is charged only the wall time
 * during which it is the innermost open span, so the per-phase
 * fractions of one single-threaded run always sum to at most 1.0 of
 * wall time (time outside any span — scheduling, state sweeping — is
 * deliberately uncharged). Everything is inline and guarded by one
 * predictable branch; a disabled profiler costs a single load+test
 * per span, and building with -DS2E_OBS_DEFAULT_OFF=ON flips the
 * default so unconfigured runs pay nothing.
 */

#ifndef S2E_OBS_PROFILER_HH
#define S2E_OBS_PROFILER_HH

#include <array>
#include <chrono>
#include <cstdint>

#include "support/stats.hh"

namespace s2e::obs {

/** Compile-time default for EngineConfig::profileExecution (see the
 *  S2E_OBS_DEFAULT_OFF CMake option). */
#ifdef S2E_OBS_DEFAULT_OFF
inline constexpr bool kProfilerDefaultEnabled = false;
#else
inline constexpr bool kProfilerDefaultEnabled = true;
#endif

/** The span taxonomy (see DESIGN.md "Observability"). */
enum class Phase : uint8_t {
    Translate,    ///< DBT: gisa -> micro-op IR, incl. translation hooks
    ConcreteExec, ///< translation-block execution (the default phase)
    SymbolicExec, ///< expression building / symbolic control flow
    Solver,       ///< constraint solving (solver::Solver::solveSat)
    Fork,         ///< state cloning + fork event dispatch
};
inline constexpr size_t kNumPhases = 5;

inline const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Translate: return "translate";
      case Phase::ConcreteExec: return "concrete";
      case Phase::SymbolicExec: return "symbolic";
      case Phase::Solver: return "solver";
      case Phase::Fork: return "fork";
    }
    return "?";
}

class PhaseProfiler
{
  public:
    /** Injectable monotonic-nanosecond source (tests use a fake). */
    using ClockFn = uint64_t (*)();

    struct PhaseStat {
        uint64_t spans = 0;          ///< times the phase was entered
        uint64_t exclusiveNanos = 0; ///< innermost-span wall time
    };

    explicit PhaseProfiler(bool enabled = kProfilerDefaultEnabled)
        : enabled_(enabled)
    {
    }

    bool enabled() const { return enabled_; }

    /** Toggle recording. Do not toggle while spans are open: an open
     *  PhaseSpan only pops if the profiler was enabled at entry. */
    void setEnabled(bool on) { enabled_ = on; }

    void
    push(Phase p)
    {
        if (!enabled_)
            return;
        charge(now_());
        if (depth_ < kMaxDepth) {
            stack_[depth_] = p;
            stats_[static_cast<size_t>(p)].spans++;
        }
        depth_++;
    }

    void
    pop()
    {
        if (!enabled_)
            return;
        charge(now_());
        if (depth_ > 0)
            depth_--;
    }

    const PhaseStat &
    stat(Phase p) const
    {
        return stats_[static_cast<size_t>(p)];
    }

    double
    seconds(Phase p) const
    {
        return static_cast<double>(stat(p).exclusiveNanos) * 1e-9;
    }

    /** Sum of all exclusive phase times. */
    double
    totalSeconds() const
    {
        uint64_t nanos = 0;
        for (const PhaseStat &s : stats_)
            nanos += s.exclusiveNanos;
        return static_cast<double>(nanos) * 1e-9;
    }

    void
    reset()
    {
        stats_ = {};
        depth_ = 0;
        last_ = 0;
    }

    /**
     * Fold a quiescent per-worker profiler's tallies into this one
     * (span counts and exclusive nanos add). After merging N workers
     * the summed phase seconds represent CPU time across the pool and
     * may legitimately exceed one wall-clock; consumers normalize by
     * wall * workers (see RunReport).
     */
    void
    mergeFrom(const PhaseProfiler &other)
    {
        for (size_t i = 0; i < kNumPhases; ++i) {
            stats_[i].spans += other.stats_[i].spans;
            stats_[i].exclusiveNanos += other.stats_[i].exclusiveNanos;
        }
    }

    /** Write absolute phase times/counts into a Stats registry as
     *  `<prefix>.<phase>` timers and `<prefix>.<phase>.spans`
     *  counters (set semantics: safe to flush repeatedly). */
    void
    flushTo(Stats &stats, const std::string &prefix) const
    {
        for (size_t i = 0; i < kNumPhases; ++i) {
            Phase p = static_cast<Phase>(i);
            std::string base = prefix + "." + phaseName(p);
            stats.setSeconds(base, seconds(p));
            stats.set(base + ".spans", stats_[i].spans);
        }
    }

    void
    setClockForTest(ClockFn fn)
    {
        now_ = fn;
        last_ = 0;
    }

  private:
    static constexpr size_t kMaxDepth = 32;

    static uint64_t
    steadyNanos()
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /** Charge elapsed time to the innermost open span. Spans beyond
     *  kMaxDepth are counted for balance but charged nowhere. */
    void
    charge(uint64_t now)
    {
        if (depth_ > 0 && depth_ <= kMaxDepth)
            stats_[static_cast<size_t>(stack_[depth_ - 1])]
                .exclusiveNanos += now - last_;
        last_ = now;
    }

    bool enabled_;
    size_t depth_ = 0;
    uint64_t last_ = 0;
    ClockFn now_ = &steadyNanos;
    std::array<Phase, kMaxDepth> stack_{};
    std::array<PhaseStat, kNumPhases> stats_{};
};

/** RAII span. Safe to construct from a null profiler pointer. */
class PhaseSpan
{
  public:
    PhaseSpan(PhaseProfiler &profiler, Phase p)
        : profiler_(profiler.enabled() ? &profiler : nullptr)
    {
        if (profiler_)
            profiler_->push(p);
    }

    PhaseSpan(PhaseProfiler *profiler, Phase p)
        : profiler_(profiler && profiler->enabled() ? profiler : nullptr)
    {
        if (profiler_)
            profiler_->push(p);
    }

    ~PhaseSpan()
    {
        if (profiler_)
            profiler_->pop();
    }

    PhaseSpan(const PhaseSpan &) = delete;
    PhaseSpan &operator=(const PhaseSpan &) = delete;

  private:
    PhaseProfiler *profiler_;
};

} // namespace s2e::obs

#endif // S2E_OBS_PROFILER_HH
