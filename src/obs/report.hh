/**
 * @file
 * RunReport: one machine-readable summary per engine run, serialized
 * to the stable `s2e.run_report.v1` JSON schema (see DESIGN.md,
 * "Observability"). Aggregates the RunResult, the phase-time
 * breakdown (the paper's Fig 9 fractions), every engine and solver
 * stat, per-state summaries, plus bench-specific metrics/series. All
 * bench_* harnesses emit one as BENCH_<name>.json so perf trajectories
 * accumulate across commits.
 */

#ifndef S2E_OBS_REPORT_HH
#define S2E_OBS_REPORT_HH

#include <map>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "obs/profiler.hh"

namespace s2e::obs {

class RunReport
{
  public:
    /** One row of the phase-time breakdown. */
    struct PhaseRow {
        std::string name;
        uint64_t spans = 0;
        double seconds = 0;
        double fraction = 0; ///< of the run's wall time
    };

    /** Terminal summary of one execution state. */
    struct StateRow {
        int id = 0;
        int parent = -1;
        std::string path; ///< deterministic path id ("0.2.1")
        std::string status;
        std::string message;
        uint64_t instructions = 0;
        uint64_t symInstructions = 0;
        uint64_t blocks = 0;
        bool degraded = false;
        uint32_t exitCode = 0;
    };

    explicit RunReport(std::string name) : name_(std::move(name)) {}

    /** Snapshot an engine after run(): RunResult, phase breakdown,
     *  engine + solver stats, per-state summaries. */
    void captureEngine(core::Engine &engine, const core::RunResult &run);

    /** Bench-specific scalar (e.g. coverage, overhead factor). */
    void setMetric(const std::string &name, double value)
    {
        metrics_[name] = value;
    }

    /** Bench-specific series (e.g. a coverage timeline). */
    void setSeries(const std::string &name, std::vector<double> values)
    {
        series_[name] = std::move(values);
    }

    void addNote(const std::string &note) { notes_.push_back(note); }

    const std::string &name() const { return name_; }
    const std::vector<PhaseRow> &phases() const { return phases_; }
    const std::vector<StateRow> &states() const { return states_; }
    double wallSeconds() const { return wallSeconds_; }

    /** Sum of all phase fractions (≤ 1.0 by construction: phases are
     *  charged exclusively, see profiler.hh). */
    double phaseFractionSum() const;

    std::string toJson() const;

    /** Serialize to `path`; returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

    /** Convention used by the bench harnesses: BENCH_<suffix>.json in
     *  the current directory, suffix = bench name minus "bench_". */
    bool writeBenchFile() const;

  private:
    std::string name_;
    double wallSeconds_ = 0;
    bool hasRun_ = false;
    core::RunResult run_;
    std::vector<PhaseRow> phases_;
    std::map<std::string, uint64_t> engineCounters_;
    std::map<std::string, double> engineTimers_;
    std::map<std::string, uint64_t> solverCounters_;
    std::map<std::string, double> solverTimers_;
    std::vector<StateRow> states_;
    std::map<std::string, double> metrics_;
    std::map<std::string, std::vector<double>> series_;
    std::vector<std::string> notes_;
};

} // namespace s2e::obs

#endif // S2E_OBS_REPORT_HH
