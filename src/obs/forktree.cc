#include "obs/forktree.hh"

#include <algorithm>

#include "expr/expr.hh"
#include "obs/json.hh"
#include "support/logging.hh"

namespace s2e::obs {

namespace {

/** Render a branch condition, bounded so huge expressions cannot
 *  bloat the tree (conditions are for humans here, not replay). */
std::string
renderCondition(expr::ExprRef cond)
{
    if (!cond)
        return "";
    std::string s = cond->toString();
    constexpr size_t kMaxLen = 160;
    if (s.size() > kMaxLen)
        s = s.substr(0, kMaxLen) + "...";
    return s;
}

} // namespace

ForkTreeRecorder::ForkTreeRecorder(core::EventHub &events) : events_(events)
{
    forkHandle_ =
        events_.onExecutionFork.subscribe([this](const core::ForkInfo &fi) {
            std::lock_guard<std::mutex> lock(mu_);
            forks_++;
            ForkNode &parent = ensure(fi.parent->id());
            parent.pathId = fi.parent->pathId();
            ForkNode &child = ensure(fi.child->id());
            parent.children.push_back(fi.child->id());
            child.parent = fi.parent->id();
            child.pathId = fi.child->pathId();
            child.forkPc = fi.parent->cpu.pc;
            child.condition = renderCondition(fi.condition);
        });
    killHandle_ =
        events_.onStateKill.subscribe([this](core::ExecutionState &state) {
            std::lock_guard<std::mutex> lock(mu_);
            ForkNode &node = ensure(state.id());
            node.pathId = state.pathId();
            node.finished = true;
            node.status = core::stateStatusName(state.status);
            node.statusMessage = state.statusMessage;
            node.instructions = state.instrCount;
            node.degraded = state.degraded;
        });
    degradeHandle_ = events_.onSolverDegraded.subscribe(
        [this](core::ExecutionState &state,
               const core::SolverDegradeInfo &) {
            std::lock_guard<std::mutex> lock(mu_);
            ForkNode &node = ensure(state.id());
            node.pathId = state.pathId();
            node.degraded = true;
            node.degradeEvents++;
        });
}

ForkTreeRecorder::~ForkTreeRecorder()
{
    events_.onExecutionFork.unsubscribe(forkHandle_);
    events_.onStateKill.unsubscribe(killHandle_);
    events_.onSolverDegraded.unsubscribe(degradeHandle_);
}

ForkNode &
ForkTreeRecorder::ensure(int id)
{
    ForkNode &node = nodes_[id];
    node.id = id;
    return node;
}

std::string
ForkTreeRecorder::toDot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "digraph forktree {\n";
    out += "  node [shape=box fontsize=9];\n";
    for (const auto &[id, node] : nodes_) {
        std::string label = strprintf("s%d", id);
        if (node.finished)
            label += "\\n" + node.status;
        if (node.degraded)
            label += "\\ndegraded";
        out += strprintf("  n%d [label=\"%s\"];\n", id, label.c_str());
    }
    for (const auto &[id, node] : nodes_) {
        for (int child : node.children) {
            auto it = nodes_.find(child);
            std::string cond =
                it == nodes_.end() ? "" : it->second.condition;
            // DOT string escaping for the edge label
            std::string esc;
            for (char c : cond) {
                if (c == '"' || c == '\\')
                    esc += '\\';
                esc += c;
            }
            out += strprintf("  n%d -> n%d [label=\"%s\"];\n", id, child,
                             esc.c_str());
        }
    }
    out += "}\n";
    return out;
}

std::string
ForkTreeRecorder::toJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    JsonWriter w;
    w.beginObject();
    w.field("schema", "s2e.fork_tree.v1");
    w.field("forks", static_cast<uint64_t>(forks_));
    w.key("nodes").beginArray();
    for (const auto &[id, node] : nodes_) {
        w.beginObject();
        w.field("id", static_cast<int64_t>(node.id));
        w.field("parent", static_cast<int64_t>(node.parent));
        w.field("fork_pc", static_cast<uint64_t>(node.forkPc));
        w.field("condition", node.condition);
        w.key("children").beginArray();
        for (int child : node.children)
            w.value(static_cast<int64_t>(child));
        w.endArray();
        w.field("finished", node.finished);
        w.field("status", node.status);
        w.field("message", node.statusMessage);
        w.field("instructions", node.instructions);
        w.field("degraded", node.degraded);
        w.field("degrade_events",
                static_cast<uint64_t>(node.degradeEvents));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
ForkTreeRecorder::toCanonicalJson() const
{
    std::lock_guard<std::mutex> lock(mu_);

    // Key everything by path id: runtime state ids depend on the order
    // in which workers reached their forks; path ids do not.
    std::map<std::string, const ForkNode *> by_path;
    for (const auto &[id, node] : nodes_)
        by_path.emplace(node.pathId, &node);

    JsonWriter w;
    w.beginObject();
    w.field("schema", "s2e.fork_tree.v1");
    w.field("canonical", true);
    w.field("forks", static_cast<uint64_t>(forks_));
    w.key("nodes").beginArray();
    for (const auto &[path, node] : by_path) {
        auto parent_it = nodes_.find(node->parent);
        std::vector<std::string> child_paths;
        for (int child : node->children) {
            auto it = nodes_.find(child);
            if (it != nodes_.end())
                child_paths.push_back(it->second.pathId);
        }
        std::sort(child_paths.begin(), child_paths.end());

        w.beginObject();
        w.field("path", path);
        w.field("parent", parent_it == nodes_.end()
                              ? std::string()
                              : parent_it->second.pathId);
        w.field("fork_pc", static_cast<uint64_t>(node->forkPc));
        w.field("condition", node->condition);
        w.key("children").beginArray();
        for (const std::string &cp : child_paths)
            w.value(cp);
        w.endArray();
        w.field("finished", node->finished);
        w.field("status", node->status);
        w.field("message", node->statusMessage);
        w.field("instructions", node->instructions);
        w.field("degraded", node->degraded);
        w.field("degrade_events",
                static_cast<uint64_t>(node->degradeEvents));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace s2e::obs
