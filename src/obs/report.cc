#include "obs/report.hh"

#include <fstream>

#include "obs/json.hh"
#include "support/logging.hh"

namespace s2e::obs {

void
RunReport::captureEngine(core::Engine &engine, const core::RunResult &run)
{
    hasRun_ = true;
    run_ = run;
    wallSeconds_ = run.wallSeconds;

    phases_.clear();
    const PhaseProfiler &prof = engine.profiler();
    for (size_t i = 0; i < kNumPhases; ++i) {
        Phase p = static_cast<Phase>(i);
        PhaseRow row;
        row.name = phaseName(p);
        row.spans = prof.stat(p).spans;
        row.seconds = prof.seconds(p);
        row.fraction = wallSeconds_ > 0 ? row.seconds / wallSeconds_ : 0;
        phases_.push_back(row);
    }

    engineCounters_ = engine.stats().counters();
    engineTimers_ = engine.stats().timers();
    solverCounters_ = engine.solver().stats().counters();
    solverTimers_ = engine.solver().stats().timers();

    states_.clear();
    for (const auto &state : engine.allStates()) {
        StateRow row;
        row.id = state->id();
        row.parent = state->parentId();
        row.path = state->pathId();
        row.status = core::stateStatusName(state->status);
        row.message = state->statusMessage;
        row.instructions = state->instrCount;
        row.symInstructions = state->symInstrCount;
        row.blocks = state->blockCount;
        row.degraded = state->degraded;
        row.exitCode = state->exitCode;
        states_.push_back(row);
    }
}

double
RunReport::phaseFractionSum() const
{
    double sum = 0;
    for (const PhaseRow &row : phases_)
        sum += row.fraction;
    return sum;
}

std::string
RunReport::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", "s2e.run_report.v1");
    w.field("name", name_);
    w.field("wall_seconds", wallSeconds_);

    if (hasRun_) {
        w.key("run").beginObject();
        w.field("total_instructions", run_.totalInstructions);
        w.field("total_blocks", run_.totalBlocks);
        w.field("forks", run_.forks);
        w.field("states_created", static_cast<uint64_t>(run_.statesCreated));
        w.field("completed", static_cast<uint64_t>(run_.completed));
        w.field("crashed", static_cast<uint64_t>(run_.crashed));
        w.field("aborted", static_cast<uint64_t>(run_.aborted));
        w.field("solver_failures",
                static_cast<uint64_t>(run_.solverFailures));
        w.field("degraded_states",
                static_cast<uint64_t>(run_.degradedStates));
        w.field("states_merged",
                static_cast<uint64_t>(run_.mergedStates));
        w.field("spill_failures",
                static_cast<uint64_t>(run_.spillFailures));
        w.field("states_spilled", run_.statesSpilled);
        w.field("states_restored", run_.statesRestored);
        w.field("spill_bytes", run_.spillBytes);
        w.field("spill_retries", run_.spillRetries);
        w.field("resident_states_peak", run_.residentStatesPeak);
        w.field("budget_exhausted", run_.budgetExhausted);
        w.field("workers", run_.workers);
        w.key("worker_busy_seconds").beginArray();
        for (double busy : run_.workerBusySeconds)
            w.value(busy);
        w.endArray();
        // Fraction of the run's wall time each worker spent executing
        // states (vs idling in the work queue).
        w.key("worker_utilization").beginArray();
        for (double busy : run_.workerBusySeconds)
            w.value(wallSeconds_ > 0 ? busy / wallSeconds_ : 0.0);
        w.endArray();
        // Fiber scheduler telemetry (all zero on the blocking engine).
        w.field("suspends", run_.suspends);
        w.field("resumes", run_.resumes);
        w.field("async_queries", run_.asyncQueries);
        w.field("batched_queries", run_.batchedQueries);
        w.field("inline_solver_fallbacks", run_.inlineSolverFallbacks);
        w.field("fibers_peak", run_.fibersPeak);
        w.field("solver_queue_depth_peak", run_.solverQueueDepthPeak);
        w.field("service_busy_seconds", run_.serviceBusySeconds);
        w.field("solver_overlap_seconds", run_.solverOverlapSeconds);
        w.field("solver_overlap_ratio", run_.solverOverlapRatio);
        w.field("suspend_resume_per_sec", run_.suspendResumePerSec);
        w.field("worker_solver_seconds", run_.workerSolverSeconds);
        w.endObject();
    }

    w.key("phases").beginArray();
    for (const PhaseRow &row : phases_) {
        w.beginObject();
        w.field("name", row.name);
        w.field("spans", row.spans);
        w.field("seconds", row.seconds);
        w.field("fraction", row.fraction);
        w.endObject();
    }
    w.endArray();

    auto emitStats = [&w](const char *label,
                          const std::map<std::string, uint64_t> &counters,
                          const std::map<std::string, double> &timers) {
        w.key(label).beginObject();
        w.key("counters").beginObject();
        for (const auto &[name, value] : counters)
            w.field(name, value);
        w.endObject();
        w.key("timers_seconds").beginObject();
        for (const auto &[name, value] : timers)
            w.field(name, value);
        w.endObject();
        w.endObject();
    };
    emitStats("engine", engineCounters_, engineTimers_);
    emitStats("solver", solverCounters_, solverTimers_);

    w.key("states").beginArray();
    for (const StateRow &row : states_) {
        w.beginObject();
        w.field("id", static_cast<int64_t>(row.id));
        w.field("parent", static_cast<int64_t>(row.parent));
        w.field("path", row.path);
        w.field("status", row.status);
        w.field("message", row.message);
        w.field("instructions", row.instructions);
        w.field("sym_instructions", row.symInstructions);
        w.field("blocks", row.blocks);
        w.field("degraded", row.degraded);
        w.field("exit_code", static_cast<uint64_t>(row.exitCode));
        w.endObject();
    }
    w.endArray();

    w.key("metrics").beginObject();
    for (const auto &[name, value] : metrics_)
        w.field(name, value);
    w.endObject();

    w.key("series").beginObject();
    for (const auto &[name, values] : series_) {
        w.key(name).beginArray();
        for (double v : values)
            w.value(v);
        w.endArray();
    }
    w.endObject();

    w.key("notes").beginArray();
    for (const std::string &note : notes_)
        w.value(note);
    w.endArray();

    w.endObject();
    return w.str();
}

bool
RunReport::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson() << "\n";
    return static_cast<bool>(out);
}

bool
RunReport::writeBenchFile() const
{
    std::string suffix = name_;
    if (suffix.rfind("bench_", 0) == 0)
        suffix = suffix.substr(6);
    std::string path = "BENCH_" + suffix + ".json";
    bool ok = writeFile(path);
    if (ok)
        inform("run report written to %s", path.c_str());
    else
        warn("failed to write run report %s", path.c_str());
    return ok;
}

} // namespace s2e::obs
