/**
 * @file
 * Heartbeat emitter: periodic liveness/progress lines for long
 * explorations. Every N executed translation blocks it samples the
 * engine — active states, instructions/second, fork rate, solver-time
 * fraction, memory high-watermark — logs one line through
 * logging.hh's inform() and keeps the sample for RunReport/tests.
 */

#ifndef S2E_OBS_HEARTBEAT_HH
#define S2E_OBS_HEARTBEAT_HH

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/engine.hh"

namespace s2e::obs {

/** One heartbeat sample. Rates are over the interval since the
 *  previous beat (or since attach, for the first one). */
struct HeartbeatRecord {
    uint64_t blocks = 0;        ///< blocks executed so far
    uint64_t instructions = 0;  ///< instructions executed so far
    size_t activeStates = 0;
    double wallSeconds = 0;     ///< since attach
    double instrPerSec = 0;
    double forksPerSec = 0;
    double solverFraction = 0;  ///< solver time / wall time, interval
    uint64_t memHighWatermark = 0;
};

class Heartbeat
{
  public:
    struct Config {
        uint64_t everyBlocks = 4096;
        bool log = true; ///< emit inform() lines (records always kept)
    };

    explicit Heartbeat(core::Engine &engine) : Heartbeat(engine, Config()) {}
    Heartbeat(core::Engine &engine, Config config);
    ~Heartbeat();
    Heartbeat(const Heartbeat &) = delete;
    Heartbeat &operator=(const Heartbeat &) = delete;

    const std::vector<HeartbeatRecord> &records() const { return records_; }

  private:
    void beat();

    core::Engine &engine_;
    Config config_;
    size_t blockHandle_;

    uint64_t blocks_ = 0;
    uint64_t instructions_ = 0;
    std::chrono::steady_clock::time_point start_;

    // previous-beat baselines for interval rates
    std::chrono::steady_clock::time_point lastTime_;
    uint64_t lastInstructions_ = 0;
    uint64_t lastForks_ = 0;
    double lastSolverSeconds_ = 0;

    std::vector<HeartbeatRecord> records_;
};

} // namespace s2e::obs

#endif // S2E_OBS_HEARTBEAT_HH
