/**
 * @file
 * The dynamic binary translator: lowers gisa instructions into
 * micro-op translation blocks, plus the translation-block cache.
 */

#ifndef S2E_DBT_TRANSLATOR_HH
#define S2E_DBT_TRANSLATOR_HH

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "dbt/ir.hh"
#include "support/stats.hh"

namespace s2e::dbt {

/**
 * Reads one byte of guest code at `addr` into *out. Returns false when
 * the address is unmapped or holds symbolic data (symbolic code bytes
 * force retranslation failure; self-decrypting guests first write
 * concrete bytes, which is supported).
 */
using CodeReader = std::function<bool(uint32_t addr, uint8_t *out)>;

/**
 * Compile-time default for TB optimization; the S2E_TB_OPT CMake
 * option (default ON) flips it for differential/debug builds.
 */
#ifdef S2E_TB_OPT_OFF
inline constexpr bool kTbOptimizeDefault = false;
#else
inline constexpr bool kTbOptimizeDefault = true;
#endif

/**
 * Default for post-translation TB verification: always on in debug
 * builds; in release builds opt in with the S2E_VERIFY_TB environment
 * variable.
 */
bool tbVerifyDefault();

/** Translator configuration. */
struct TranslatorConfig {
    unsigned maxInstrsPerBlock = 16;
    /** Run the analysis passes (constant folding, dead-flag and
     *  dead-temp elimination) on each block before returning it. */
    bool optimize = kTbOptimizeDefault;
    /** Verify structural TB invariants after translation (and again
     *  after optimization when `optimize` is set); panics on a
     *  violation — a violation is a translator or pass bug. */
    bool verify = tbVerifyDefault();
};

/**
 * Stateless gisa -> micro-op lowering. A TB covers a straight-line
 * run of instructions and ends at the first control-flow instruction
 * (or the block limit, in which case it chains with a Goto).
 */
class Translator
{
  public:
    explicit Translator(TranslatorConfig config = {}) : config_(config) {}

    /**
     * Translate a block starting at pc and (per config) optimize it.
     * On an undecodable first instruction the returned block has
     * empty instrPcs (a decode fault the engine turns into a guest
     * exception). Equivalent to translateRaw + optimizeBlock.
     */
    std::shared_ptr<TranslationBlock> translate(uint32_t pc,
                                                const CodeReader &reader);

    /**
     * Translate without running the optimization passes (still
     * verifies when configured). The engine uses this to defer the
     * optimize decision until plugins had a chance to mark
     * instructions: a marked instruction means a hook will observe —
     * and may mutate — architectural state at that boundary, which
     * in-block constant propagation and dead-flag elimination must
     * not reason across.
     */
    std::shared_ptr<TranslationBlock> translateRaw(uint32_t pc,
                                                   const CodeReader &reader);

    /** Apply the passes per config (no-op when optimize is off). */
    void optimizeBlock(TranslationBlock &tb) const;

  private:
    TranslatorConfig config_;
};

/** Page granularity used for self-modifying-code invalidation. */
constexpr uint32_t kCodePageBits = 10;
constexpr uint32_t kCodePageSize = 1u << kCodePageBits;

/**
 * Global translation-block cache shared by all execution states and
 * all exploration workers.
 *
 * Blocks are invalidated when guest code writes to a page containing
 * translated code; pages that have ever been written are additionally
 * checksum-verified on lookup, so states whose self-modified code
 * diverged never execute a stale block.
 *
 * Concurrency discipline: the map structures are guarded by an
 * internal mutex (lookup/insert/notifyWrite/clear). Two lock-free
 * paths keep worker hot loops cheap: overlapsCode() consults a hashed
 * page bitmap (conservative: may report true for untranslated pages,
 * never false for translated ones), and generation() is an atomic
 * that bumps on every invalidation so workers can maintain private
 * lookup caches and flush them only when the shared cache changed
 * underneath them.
 */
class TbCache
{
  public:
    /**
     * Look up a valid block, verifying dirty pages via `reader`. When
     * `clean` is non-null it is set to true iff none of the block's
     * pages were ever written — i.e. the block may be cached outside
     * TbCache until generation() changes.
     */
    std::shared_ptr<TranslationBlock> lookup(uint32_t pc,
                                             const CodeReader &reader,
                                             bool *clean = nullptr);

    /**
     * Insert a freshly translated block. If another worker already
     * published an identical block for this pc, the existing one wins;
     * the canonical block is returned and should replace the caller's.
     * `clean` is as for lookup().
     */
    std::shared_ptr<TranslationBlock>
    insert(const std::shared_ptr<TranslationBlock> &tb,
           const CodeReader &reader, bool *clean = nullptr);

    /** A guest write hit [addr, addr+len): drop affected blocks. */
    void notifyWrite(uint32_t addr, uint32_t len);

    /** True if [addr, addr+len) may overlap a translated code page
     *  (callers can skip notifyWrite bookkeeping otherwise). Lock-free
     *  and conservative: false positives possible, negatives exact. */
    bool
    overlapsCode(uint32_t addr, uint32_t len) const
    {
        if (len == 0)
            return false;
        for (uint32_t page = addr >> kCodePageBits;
             page <= (addr + len - 1) >> kCodePageBits; ++page)
            if (pageBit(page).load(std::memory_order_relaxed) &
                pageMask(page))
                return true;
        return false;
    }

    void clear();

    /** Monotonic invalidation counter (notifyWrite/clear bump it). */
    uint64_t
    generation() const
    {
        return generation_.load(std::memory_order_acquire);
    }

    uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    uint64_t
    misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    size_t size() const;

  private:
    uint64_t checksum(const TranslationBlock &tb,
                      const CodeReader &reader) const;

    // Hashed one-bit-per-page presence filter for overlapsCode().
    // Bits are only ever set while the page holds translated code and
    // only cleared wholesale in clear(), so a zero bit is authoritative.
    static constexpr uint32_t kPageBitmapWords = 1024; // 32K page slots

    std::atomic<uint32_t> &
    pageBit(uint32_t page) const
    {
        return pageBitmap_[(page >> 5) % kPageBitmapWords];
    }
    static uint32_t pageMask(uint32_t page) { return 1u << (page & 31); }

    struct Entry {
        std::shared_ptr<TranslationBlock> tb;
        uint64_t checksum = 0;
    };
    mutable std::mutex mu_;
    std::unordered_map<uint32_t, Entry> blocks_;
    std::unordered_map<uint32_t, std::vector<uint32_t>> pageIndex_;
    std::unordered_set<uint32_t> dirtyPages_;
    mutable std::array<std::atomic<uint32_t>, kPageBitmapWords>
        pageBitmap_{};
    std::atomic<uint64_t> generation_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

} // namespace s2e::dbt

#endif // S2E_DBT_TRANSLATOR_HH
