#include "dbt/ir.hh"

#include "support/logging.hh"

namespace s2e::dbt {

namespace {
const char *
uopName(UOp op)
{
    switch (op) {
      case UOp::Const: return "const";
      case UOp::GetReg: return "get_reg";
      case UOp::SetReg: return "set_reg";
      case UOp::Add: return "add";
      case UOp::Sub: return "sub";
      case UOp::Mul: return "mul";
      case UOp::UDiv: return "udiv";
      case UOp::SDiv: return "sdiv";
      case UOp::URem: return "urem";
      case UOp::SRem: return "srem";
      case UOp::And: return "and";
      case UOp::Or: return "or";
      case UOp::Xor: return "xor";
      case UOp::Shl: return "shl";
      case UOp::Shr: return "shr";
      case UOp::Sar: return "sar";
      case UOp::Not: return "not";
      case UOp::Neg: return "neg";
      case UOp::CmpEq: return "cmp_eq";
      case UOp::CmpUlt: return "cmp_ult";
      case UOp::CmpSlt: return "cmp_slt";
      case UOp::Load: return "load";
      case UOp::Store: return "store";
      case UOp::GetFlag: return "get_flag";
      case UOp::SetFlag: return "set_flag";
      case UOp::In: return "in";
      case UOp::Out: return "out";
      case UOp::Goto: return "goto";
      case UOp::GotoInd: return "goto_ind";
      case UOp::Branch: return "branch";
      case UOp::CallDir: return "call";
      case UOp::Ret: return "ret";
      case UOp::IntSw: return "int";
      case UOp::IretOp: return "iret";
      case UOp::Halt: return "halt";
      case UOp::S2Op: return "s2op";
    }
    return "<bad>";
}
} // namespace

std::string
MicroOp::toString() const
{
    switch (op) {
      case UOp::Const:
        return strprintf("t%u = const 0x%x", dst, imm);
      case UOp::GetReg:
        return strprintf("t%u = r%u", dst, reg);
      case UOp::SetReg:
        return strprintf("r%u = t%u", reg, a);
      case UOp::GetFlag:
        return strprintf("t%u = flag%u", dst, reg);
      case UOp::SetFlag:
        return strprintf("flag%u = t%u", reg, a);
      case UOp::Load:
        return strprintf("t%u = load%u [t%u+0x%x]%s", dst, size * 8, a, imm,
                         signExt ? " sext" : "");
      case UOp::Store:
        return strprintf("store%u [t%u+0x%x] = t%u", size * 8, a, imm, b);
      case UOp::Not:
      case UOp::Neg:
        return strprintf("t%u = %s t%u", dst, uopName(op), a);
      case UOp::Goto:
      case UOp::CallDir:
        return strprintf("%s 0x%x", uopName(op), imm);
      case UOp::GotoInd:
      case UOp::Ret:
        return strprintf("%s t%u", uopName(op), a);
      case UOp::Branch:
        return strprintf("branch t%u ? 0x%x : 0x%x", a, imm, imm2);
      case UOp::IntSw:
        return strprintf("int 0x%x", imm);
      case UOp::IretOp:
      case UOp::Halt:
        return uopName(op);
      case UOp::In:
        return strprintf("t%u = in t%u", dst, a);
      case UOp::Out:
        return strprintf("out t%u, t%u", a, b);
      case UOp::S2Op:
        return strprintf("s2op %s", isa::opcodeName(
                                        static_cast<isa::Opcode>(imm)));
      default:
        return strprintf("t%u = %s t%u, t%u", dst, uopName(op), a, b);
    }
}

std::string
TranslationBlock::toString() const
{
    std::string out = strprintf("TB @0x%x (%zu instrs, %zu uops)\n", pc,
                                instrPcs.size(), ops.size());
    for (size_t i = 0; i < ops.size(); ++i)
        out += "  " + ops[i].toString() + "\n";
    return out;
}

} // namespace s2e::dbt
