#include "dbt/fastexec.hh"

#include <cstring>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace s2e::dbt {

void
FastMachine::load(const isa::Program &program)
{
    for (const auto &section : program.sections) {
        S2E_ASSERT(section.addr + section.bytes.size() <= mem.size(),
                   "program section at 0x%x overflows RAM", section.addr);
        std::memcpy(mem.data() + section.addr, section.bytes.data(),
                    section.bytes.size());
    }
    pc = program.entry;
}

FastRunResult
fastRun(FastMachine &m, uint64_t max_instructions, TbCache *cache,
        TranslatorConfig translator_config)
{
    Translator translator(translator_config);
    TbCache local_cache;
    if (!cache)
        cache = &local_cache;

    CodeReader reader = [&m](uint32_t addr, uint8_t *out) {
        if (addr >= m.mem.size())
            return false;
        *out = m.mem[addr];
        return true;
    };

    FastRunResult result;
    std::vector<uint32_t> temps;

    while (result.instructions < max_instructions) {
        if (m.pc >= m.mem.size()) {
            result.finalPc = m.pc;
            return result;
        }
        std::shared_ptr<TranslationBlock> tb = cache->lookup(m.pc, reader);
        if (!tb) {
            tb = translator.translate(m.pc, reader);
            if (tb->instrPcs.empty()) {
                result.finalPc = m.pc;
                return result; // decode fault
            }
            cache->insert(tb, reader);
        }
        result.blocks++;
        result.instructions += tb->instrPcs.size();

        temps.resize(tb->numTemps);
        uint32_t next_pc = m.pc + tb->byteSize;
        bool leave = false;

        for (const MicroOp &op : tb->ops) {
            switch (op.op) {
              case UOp::Const: temps[op.dst] = op.imm; break;
              case UOp::GetReg: temps[op.dst] = m.regs[op.reg]; break;
              case UOp::SetReg: m.regs[op.reg] = temps[op.a]; break;
              case UOp::GetFlag: temps[op.dst] = m.flags[op.reg]; break;
              case UOp::SetFlag: m.flags[op.reg] = temps[op.a]; break;
              case UOp::Add:
                temps[op.dst] = temps[op.a] + temps[op.b];
                break;
              case UOp::Sub:
                temps[op.dst] = temps[op.a] - temps[op.b];
                break;
              case UOp::Mul:
                temps[op.dst] = temps[op.a] * temps[op.b];
                break;
              case UOp::UDiv:
                temps[op.dst] = temps[op.b] ? temps[op.a] / temps[op.b]
                                            : 0xFFFFFFFFu;
                break;
              case UOp::SDiv: {
                int32_t a = static_cast<int32_t>(temps[op.a]);
                int32_t b = static_cast<int32_t>(temps[op.b]);
                if (b == 0)
                    temps[op.dst] = 0xFFFFFFFFu;
                else if (b == -1 && a == INT32_MIN)
                    temps[op.dst] = static_cast<uint32_t>(a);
                else
                    temps[op.dst] = static_cast<uint32_t>(a / b);
                break;
              }
              case UOp::URem:
                temps[op.dst] = temps[op.b] ? temps[op.a] % temps[op.b]
                                            : temps[op.a];
                break;
              case UOp::SRem: {
                int32_t a = static_cast<int32_t>(temps[op.a]);
                int32_t b = static_cast<int32_t>(temps[op.b]);
                if (b == 0)
                    temps[op.dst] = temps[op.a];
                else if (b == -1)
                    temps[op.dst] = 0;
                else
                    temps[op.dst] = static_cast<uint32_t>(a % b);
                break;
              }
              case UOp::And:
                temps[op.dst] = temps[op.a] & temps[op.b];
                break;
              case UOp::Or:
                temps[op.dst] = temps[op.a] | temps[op.b];
                break;
              case UOp::Xor:
                temps[op.dst] = temps[op.a] ^ temps[op.b];
                break;
              case UOp::Shl:
                temps[op.dst] = temps[op.b] >= 32
                                    ? 0
                                    : temps[op.a] << temps[op.b];
                break;
              case UOp::Shr:
                temps[op.dst] = temps[op.b] >= 32
                                    ? 0
                                    : temps[op.a] >> temps[op.b];
                break;
              case UOp::Sar: {
                uint32_t s = temps[op.b];
                int32_t a = static_cast<int32_t>(temps[op.a]);
                temps[op.dst] = static_cast<uint32_t>(
                    s >= 32 ? (a < 0 ? -1 : 0) : (a >> s));
                break;
              }
              case UOp::Not: temps[op.dst] = ~temps[op.a]; break;
              case UOp::Neg: temps[op.dst] = 0 - temps[op.a]; break;
              case UOp::CmpEq:
                temps[op.dst] = temps[op.a] == temps[op.b];
                break;
              case UOp::CmpUlt:
                temps[op.dst] = temps[op.a] < temps[op.b];
                break;
              case UOp::CmpSlt:
                temps[op.dst] = static_cast<int32_t>(temps[op.a]) <
                                static_cast<int32_t>(temps[op.b]);
                break;
              case UOp::Load: {
                uint32_t addr = temps[op.a] + op.imm;
                uint32_t v = 0;
                if (addr + op.size <= m.mem.size()) {
                    for (unsigned i = 0; i < op.size; ++i)
                        v |= static_cast<uint32_t>(m.mem[addr + i])
                             << (8 * i);
                    if (op.signExt)
                        v = static_cast<uint32_t>(
                            signExtend(v, op.size * 8));
                }
                temps[op.dst] = v;
                break;
              }
              case UOp::Store: {
                uint32_t addr = temps[op.a] + op.imm;
                if (addr + op.size <= m.mem.size()) {
                    uint32_t v = temps[op.b];
                    for (unsigned i = 0; i < op.size; ++i)
                        m.mem[addr + i] = (v >> (8 * i)) & 0xFF;
                    cache->notifyWrite(addr, op.size);
                }
                break;
              }
              case UOp::In: temps[op.dst] = 0; break;
              case UOp::Out: break;
              case UOp::Goto:
              case UOp::CallDir:
                next_pc = op.imm;
                break;
              case UOp::GotoInd:
              case UOp::Ret:
                next_pc = temps[op.a];
                break;
              case UOp::Branch:
                next_pc = temps[op.a] ? op.imm : op.imm2;
                break;
              case UOp::IntSw:
              case UOp::Halt:
                result.halted = true;
                leave = true;
                break;
              case UOp::IretOp:
                leave = true;
                break;
              case UOp::S2Op:
                break; // S2E opcodes are no-ops in the vanilla machine
            }
            if (leave)
                break;
        }

        m.pc = next_pc;
        if (result.halted || leave) {
            result.finalPc = m.pc;
            return result;
        }
    }
    result.finalPc = m.pc;
    return result;
}

} // namespace s2e::dbt
