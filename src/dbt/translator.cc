#include "dbt/translator.hh"

#include <cstdlib>

#include "analysis/passes.hh"
#include "analysis/verifier.hh"
#include "support/logging.hh"

namespace s2e::dbt {

bool
tbVerifyDefault()
{
#ifndef NDEBUG
    return true;
#else
    static const bool enabled = std::getenv("S2E_VERIFY_TB") != nullptr;
    return enabled;
#endif
}

using isa::Cond;
using isa::Instruction;
using isa::Opcode;

namespace {

/** Helper building one TB's micro-op list. */
class BlockBuilder
{
  public:
    explicit BlockBuilder(TranslationBlock &tb) : tb_(tb) {}

    uint16_t
    newTemp()
    {
        return tb_.numTemps++;
    }

    uint16_t
    emitConst(uint32_t value)
    {
        uint16_t t = newTemp();
        MicroOp op;
        op.op = UOp::Const;
        op.dst = t;
        op.imm = value;
        tb_.ops.push_back(op);
        return t;
    }

    uint16_t
    emitGetReg(uint8_t reg)
    {
        uint16_t t = newTemp();
        MicroOp op;
        op.op = UOp::GetReg;
        op.dst = t;
        op.reg = reg;
        tb_.ops.push_back(op);
        return t;
    }

    void
    emitSetReg(uint8_t reg, uint16_t src)
    {
        MicroOp op;
        op.op = UOp::SetReg;
        op.reg = reg;
        op.a = src;
        tb_.ops.push_back(op);
    }

    uint16_t
    emitBin(UOp uop, uint16_t a, uint16_t b)
    {
        uint16_t t = newTemp();
        MicroOp op;
        op.op = uop;
        op.dst = t;
        op.a = a;
        op.b = b;
        tb_.ops.push_back(op);
        return t;
    }

    uint16_t
    emitUn(UOp uop, uint16_t a)
    {
        uint16_t t = newTemp();
        MicroOp op;
        op.op = uop;
        op.dst = t;
        op.a = a;
        tb_.ops.push_back(op);
        return t;
    }

    uint16_t
    emitLoad(uint16_t base, uint32_t offset, uint8_t size, bool sign_ext)
    {
        uint16_t t = newTemp();
        MicroOp op;
        op.op = UOp::Load;
        op.dst = t;
        op.a = base;
        op.imm = offset;
        op.size = size;
        op.signExt = sign_ext;
        tb_.ops.push_back(op);
        return t;
    }

    void
    emitStore(uint16_t base, uint32_t offset, uint16_t value, uint8_t size)
    {
        MicroOp op;
        op.op = UOp::Store;
        op.a = base;
        op.b = value;
        op.imm = offset;
        op.size = size;
        tb_.ops.push_back(op);
    }

    uint16_t
    emitGetFlag(Flag f)
    {
        uint16_t t = newTemp();
        MicroOp op;
        op.op = UOp::GetFlag;
        op.dst = t;
        op.reg = static_cast<uint8_t>(f);
        tb_.ops.push_back(op);
        return t;
    }

    void
    emitSetFlag(Flag f, uint16_t src)
    {
        MicroOp op;
        op.op = UOp::SetFlag;
        op.reg = static_cast<uint8_t>(f);
        op.a = src;
        tb_.ops.push_back(op);
    }

    void
    emitRaw(MicroOp op)
    {
        tb_.ops.push_back(op);
    }

    /** Z and N from a result temp. */
    void
    emitFlagsZN(uint16_t result)
    {
        uint16_t zero = emitConst(0);
        uint16_t z = emitBin(UOp::CmpEq, result, zero);
        emitSetFlag(Flag::Z, z);
        uint16_t n = emitBin(UOp::CmpSlt, result, zero);
        emitSetFlag(Flag::N, n);
    }

    void
    emitFlagsClearCV()
    {
        uint16_t zero = emitConst(0);
        emitSetFlag(Flag::C, zero);
        emitSetFlag(Flag::V, zero);
    }

    /**
     * Full add flags: C = result <u a; V = sign(~(a^b) & (a^result)).
     * The mask/shift shape mirrors how QEMU's x86 frontend computes
     * eflags — this is the bitfield-heavy pattern from paper §5.
     */
    void
    emitFlagsAdd(uint16_t a, uint16_t b, uint16_t result)
    {
        emitFlagsZN(result);
        uint16_t c = emitBin(UOp::CmpUlt, result, a);
        emitSetFlag(Flag::C, c);
        uint16_t axb = emitBin(UOp::Xor, a, b);
        uint16_t naxb = emitUn(UOp::Not, axb);
        uint16_t axr = emitBin(UOp::Xor, a, result);
        uint16_t ov = emitBin(UOp::And, naxb, axr);
        uint16_t zero = emitConst(0);
        uint16_t v = emitBin(UOp::CmpSlt, ov, zero);
        emitSetFlag(Flag::V, v);
    }

    /** Sub/cmp flags: C = a <u b (borrow); V = sign((a^b) & (a^result)). */
    void
    emitFlagsSub(uint16_t a, uint16_t b, uint16_t result)
    {
        emitFlagsZN(result);
        uint16_t c = emitBin(UOp::CmpUlt, a, b);
        emitSetFlag(Flag::C, c);
        uint16_t axb = emitBin(UOp::Xor, a, b);
        uint16_t axr = emitBin(UOp::Xor, a, result);
        uint16_t ov = emitBin(UOp::And, axb, axr);
        uint16_t zero = emitConst(0);
        uint16_t v = emitBin(UOp::CmpSlt, ov, zero);
        emitSetFlag(Flag::V, v);
    }

    /** Condition-code evaluation into a 0/1 temp. */
    uint16_t
    emitCond(Cond cc)
    {
        uint16_t zero = emitConst(0);
        auto flag_is_zero = [&](Flag f) {
            return emitBin(UOp::CmpEq, emitGetFlag(f), zero);
        };
        switch (cc) {
          case Cond::Eq:
            return emitGetFlag(Flag::Z);
          case Cond::Ne:
            return flag_is_zero(Flag::Z);
          case Cond::Ult:
            return emitGetFlag(Flag::C);
          case Cond::Uge:
            return flag_is_zero(Flag::C);
          case Cond::Ule:
            return emitBin(UOp::Or, emitGetFlag(Flag::C),
                           emitGetFlag(Flag::Z));
          case Cond::Ugt: {
            uint16_t cz = emitBin(UOp::Or, emitGetFlag(Flag::C),
                                  emitGetFlag(Flag::Z));
            return emitBin(UOp::CmpEq, cz, zero);
          }
          case Cond::Slt:
            return emitBin(UOp::Xor, emitGetFlag(Flag::N),
                           emitGetFlag(Flag::V));
          case Cond::Sge: {
            uint16_t nv = emitBin(UOp::Xor, emitGetFlag(Flag::N),
                                  emitGetFlag(Flag::V));
            return emitBin(UOp::CmpEq, nv, zero);
          }
          case Cond::Sle: {
            uint16_t nv = emitBin(UOp::Xor, emitGetFlag(Flag::N),
                                  emitGetFlag(Flag::V));
            return emitBin(UOp::Or, emitGetFlag(Flag::Z), nv);
          }
          case Cond::Sgt: {
            uint16_t nv = emitBin(UOp::Xor, emitGetFlag(Flag::N),
                                  emitGetFlag(Flag::V));
            uint16_t le = emitBin(UOp::Or, emitGetFlag(Flag::Z), nv);
            return emitBin(UOp::CmpEq, le, zero);
          }
        }
        panic("emitCond: bad cc");
    }

    /** push value-temp: sp -= 4; [sp] = value. */
    void
    emitPush(uint16_t value)
    {
        uint16_t sp = emitGetReg(isa::kRegSp);
        uint16_t four = emitConst(4);
        uint16_t nsp = emitBin(UOp::Sub, sp, four);
        emitSetReg(isa::kRegSp, nsp);
        emitStore(nsp, 0, value, 4);
    }

    /** pop: t = [sp]; sp += 4. */
    uint16_t
    emitPop()
    {
        uint16_t sp = emitGetReg(isa::kRegSp);
        uint16_t v = emitLoad(sp, 0, 4, false);
        uint16_t four = emitConst(4);
        uint16_t nsp = emitBin(UOp::Add, sp, four);
        emitSetReg(isa::kRegSp, nsp);
        return v;
    }

  private:
    TranslationBlock &tb_;
};

/** Maps a gisa ALU opcode to (uop, flag style). */
struct AluLowering {
    UOp uop;
    enum class Flags { AddStyle, SubStyle, Logic } flags;
    bool writeResult;
};

bool
aluLowering(Opcode op, AluLowering &out, bool &is_imm)
{
    is_imm = false;
    switch (op) {
      case Opcode::AddI: is_imm = true; [[fallthrough]];
      case Opcode::Add:
        out = {UOp::Add, AluLowering::Flags::AddStyle, true};
        return true;
      case Opcode::SubI: is_imm = true; [[fallthrough]];
      case Opcode::Sub:
        out = {UOp::Sub, AluLowering::Flags::SubStyle, true};
        return true;
      case Opcode::CmpI: is_imm = true; [[fallthrough]];
      case Opcode::Cmp:
        out = {UOp::Sub, AluLowering::Flags::SubStyle, false};
        return true;
      case Opcode::AndI: is_imm = true; [[fallthrough]];
      case Opcode::And:
        out = {UOp::And, AluLowering::Flags::Logic, true};
        return true;
      case Opcode::TestI: is_imm = true; [[fallthrough]];
      case Opcode::Test:
        out = {UOp::And, AluLowering::Flags::Logic, false};
        return true;
      case Opcode::OrI: is_imm = true; [[fallthrough]];
      case Opcode::Or:
        out = {UOp::Or, AluLowering::Flags::Logic, true};
        return true;
      case Opcode::XorI: is_imm = true; [[fallthrough]];
      case Opcode::Xor:
        out = {UOp::Xor, AluLowering::Flags::Logic, true};
        return true;
      case Opcode::ShlI: is_imm = true; [[fallthrough]];
      case Opcode::Shl:
        out = {UOp::Shl, AluLowering::Flags::Logic, true};
        return true;
      case Opcode::ShrI: is_imm = true; [[fallthrough]];
      case Opcode::Shr:
        out = {UOp::Shr, AluLowering::Flags::Logic, true};
        return true;
      case Opcode::SarI: is_imm = true; [[fallthrough]];
      case Opcode::Sar:
        out = {UOp::Sar, AluLowering::Flags::Logic, true};
        return true;
      case Opcode::MulI: is_imm = true; [[fallthrough]];
      case Opcode::Mul:
        out = {UOp::Mul, AluLowering::Flags::Logic, true};
        return true;
      case Opcode::UDiv:
        out = {UOp::UDiv, AluLowering::Flags::Logic, true};
        return true;
      case Opcode::SDiv:
        out = {UOp::SDiv, AluLowering::Flags::Logic, true};
        return true;
      case Opcode::URem:
        out = {UOp::URem, AluLowering::Flags::Logic, true};
        return true;
      case Opcode::SRem:
        out = {UOp::SRem, AluLowering::Flags::Logic, true};
        return true;
      default:
        return false;
    }
}

struct MemLowering {
    uint8_t size;
    bool signExt;
    bool isStore;
};

bool
memLowering(Opcode op, MemLowering &out)
{
    switch (op) {
      case Opcode::Ldb: out = {1, false, false}; return true;
      case Opcode::Ldbs: out = {1, true, false}; return true;
      case Opcode::Ldh: out = {2, false, false}; return true;
      case Opcode::Ldhs: out = {2, true, false}; return true;
      case Opcode::Ldw: out = {4, false, false}; return true;
      case Opcode::Stb: out = {1, false, true}; return true;
      case Opcode::Sth: out = {2, false, true}; return true;
      case Opcode::Stw: out = {4, false, true}; return true;
      default: return false;
    }
}

} // namespace

std::shared_ptr<TranslationBlock>
Translator::translateRaw(uint32_t start_pc, const CodeReader &reader)
{
    auto tb = std::make_shared<TranslationBlock>();
    tb->pc = start_pc;
    BlockBuilder bb(*tb);

    uint32_t pc = start_pc;
    bool terminated = false;

    for (unsigned count = 0;
         count < config_.maxInstrsPerBlock && !terminated; ++count) {
        // Fetch up to the longest encoding.
        uint8_t buf[10];
        size_t avail = 0;
        for (; avail < sizeof(buf); ++avail) {
            if (!reader(pc + static_cast<uint32_t>(avail), &buf[avail]))
                break;
        }
        Instruction instr;
        if (!isa::decode(buf, avail, instr)) {
            // Decode fault: an empty block signals the engine to raise
            // a guest exception; a partially filled block just ends.
            break;
        }

        tb->instrPcs.push_back(pc);
        tb->instrOpIndex.push_back(static_cast<uint32_t>(tb->ops.size()));
        uint32_t next_pc = pc + instr.length;

        AluLowering alu;
        bool is_imm = false;
        MemLowering mem;

        switch (instr.op) {
          case Opcode::Nop:
            break;
          case Opcode::MovI: {
            uint16_t t = bb.emitConst(instr.imm);
            bb.emitSetReg(instr.r1, t);
            break;
          }
          case Opcode::Mov: {
            uint16_t t = bb.emitGetReg(instr.r2);
            bb.emitSetReg(instr.r1, t);
            break;
          }
          case Opcode::NotR: {
            uint16_t a = bb.emitGetReg(instr.r1);
            uint16_t t = bb.emitUn(UOp::Not, a);
            bb.emitSetReg(instr.r1, t);
            bb.emitFlagsZN(t);
            bb.emitFlagsClearCV();
            break;
          }
          case Opcode::NegR: {
            uint16_t a = bb.emitGetReg(instr.r1);
            uint16_t t = bb.emitUn(UOp::Neg, a);
            bb.emitSetReg(instr.r1, t);
            bb.emitFlagsZN(t);
            bb.emitFlagsClearCV();
            break;
          }
          case Opcode::Push: {
            uint16_t v = bb.emitGetReg(instr.r1);
            bb.emitPush(v);
            break;
          }
          case Opcode::Pop: {
            uint16_t v = bb.emitPop();
            bb.emitSetReg(instr.r1, v);
            break;
          }
          case Opcode::Jmp: {
            MicroOp op;
            op.op = UOp::Goto;
            op.imm = instr.imm;
            bb.emitRaw(op);
            terminated = true;
            break;
          }
          case Opcode::JmpR: {
            uint16_t t = bb.emitGetReg(instr.r1);
            MicroOp op;
            op.op = UOp::GotoInd;
            op.a = t;
            bb.emitRaw(op);
            terminated = true;
            break;
          }
          case Opcode::Call: {
            uint16_t ret = bb.emitConst(next_pc);
            bb.emitPush(ret);
            MicroOp op;
            op.op = UOp::CallDir;
            op.imm = instr.imm;
            bb.emitRaw(op);
            terminated = true;
            break;
          }
          case Opcode::CallR: {
            uint16_t ret = bb.emitConst(next_pc);
            bb.emitPush(ret);
            uint16_t t = bb.emitGetReg(instr.r1);
            MicroOp op;
            op.op = UOp::GotoInd;
            op.a = t;
            bb.emitRaw(op);
            terminated = true;
            break;
          }
          case Opcode::Ret: {
            uint16_t t = bb.emitPop();
            MicroOp op;
            op.op = UOp::Ret;
            op.a = t;
            bb.emitRaw(op);
            terminated = true;
            break;
          }
          case Opcode::Jcc: {
            uint16_t cond = bb.emitCond(instr.cc);
            MicroOp op;
            op.op = UOp::Branch;
            op.a = cond;
            op.imm = instr.imm;
            op.imm2 = next_pc;
            bb.emitRaw(op);
            terminated = true;
            break;
          }
          case Opcode::Int: {
            MicroOp op;
            op.op = UOp::IntSw;
            op.imm = instr.imm;
            op.imm2 = next_pc;
            bb.emitRaw(op);
            terminated = true;
            break;
          }
          case Opcode::Iret: {
            MicroOp op;
            op.op = UOp::IretOp;
            bb.emitRaw(op);
            terminated = true;
            break;
          }
          case Opcode::Hlt: {
            MicroOp op;
            op.op = UOp::Halt;
            op.imm2 = next_pc;
            bb.emitRaw(op);
            terminated = true;
            break;
          }
          case Opcode::InI: {
            uint16_t port = bb.emitConst(instr.imm);
            MicroOp op;
            op.op = UOp::In;
            op.dst = bb.newTemp();
            op.a = port;
            bb.emitRaw(op);
            bb.emitSetReg(instr.r1, op.dst);
            break;
          }
          case Opcode::InR: {
            uint16_t port = bb.emitGetReg(instr.r2);
            MicroOp op;
            op.op = UOp::In;
            op.dst = bb.newTemp();
            op.a = port;
            bb.emitRaw(op);
            bb.emitSetReg(instr.r1, op.dst);
            break;
          }
          case Opcode::OutI: {
            uint16_t port = bb.emitConst(instr.imm);
            uint16_t val = bb.emitGetReg(instr.r1);
            MicroOp op;
            op.op = UOp::Out;
            op.a = port;
            op.b = val;
            bb.emitRaw(op);
            break;
          }
          case Opcode::OutR: {
            uint16_t port = bb.emitGetReg(instr.r2);
            uint16_t val = bb.emitGetReg(instr.r1);
            MicroOp op;
            op.op = UOp::Out;
            op.a = port;
            op.b = val;
            bb.emitRaw(op);
            break;
          }
          case Opcode::Cli:
          case Opcode::Sti: {
            MicroOp op;
            op.op = UOp::S2Op;
            op.imm = static_cast<uint32_t>(instr.op);
            op.imm2 = instr.op == Opcode::Sti ? 1 : 0;
            bb.emitRaw(op);
            break;
          }
          case Opcode::S2SymMem: {
            uint16_t addr = bb.emitGetReg(instr.r1);
            uint16_t len = bb.emitGetReg(instr.r2);
            MicroOp op;
            op.op = UOp::S2Op;
            op.imm = static_cast<uint32_t>(instr.op);
            op.a = addr;
            op.b = len;
            bb.emitRaw(op);
            break;
          }
          case Opcode::S2SymReg:
          case Opcode::S2Concrete: {
            MicroOp op;
            op.op = UOp::S2Op;
            op.imm = static_cast<uint32_t>(instr.op);
            op.reg = instr.r1;
            bb.emitRaw(op);
            break;
          }
          case Opcode::S2SymRange: {
            MicroOp op;
            op.op = UOp::S2Op;
            op.imm = static_cast<uint32_t>(instr.op);
            op.reg = instr.r1;
            op.a = bb.emitConst(instr.imm);
            op.b = bb.emitConst(instr.imm2);
            bb.emitRaw(op);
            break;
          }
          case Opcode::S2Ena:
          case Opcode::S2Dis: {
            MicroOp op;
            op.op = UOp::S2Op;
            op.imm = static_cast<uint32_t>(instr.op);
            bb.emitRaw(op);
            break;
          }
          case Opcode::S2Out:
          case Opcode::S2Assert: {
            uint16_t v = bb.emitGetReg(instr.r1);
            MicroOp op;
            op.op = UOp::S2Op;
            op.imm = static_cast<uint32_t>(instr.op);
            op.reg = instr.r1;
            op.a = v;
            bb.emitRaw(op);
            break;
          }
          case Opcode::S2Kill: {
            MicroOp op;
            op.op = UOp::S2Op;
            op.imm = static_cast<uint32_t>(instr.op);
            op.imm2 = instr.imm;
            bb.emitRaw(op);
            terminated = true;
            break;
          }
          case Opcode::S2Merge: {
            // Block terminator: the engine parks the state at the
            // merge barrier with pc already advanced past the opcode.
            MicroOp op;
            op.op = UOp::S2Op;
            op.imm = static_cast<uint32_t>(instr.op);
            bb.emitRaw(op);
            terminated = true;
            break;
          }
          default: {
            if (aluLowering(instr.op, alu, is_imm)) {
                uint16_t a = bb.emitGetReg(instr.r1);
                uint16_t b = is_imm ? bb.emitConst(instr.imm)
                                    : bb.emitGetReg(instr.r2);
                uint16_t res = bb.emitBin(alu.uop, a, b);
                if (alu.writeResult)
                    bb.emitSetReg(instr.r1, res);
                switch (alu.flags) {
                  case AluLowering::Flags::AddStyle:
                    bb.emitFlagsAdd(a, b, res);
                    break;
                  case AluLowering::Flags::SubStyle:
                    bb.emitFlagsSub(a, b, res);
                    break;
                  case AluLowering::Flags::Logic:
                    bb.emitFlagsZN(res);
                    bb.emitFlagsClearCV();
                    break;
                }
            } else if (memLowering(instr.op, mem)) {
                uint16_t base = bb.emitGetReg(instr.r2);
                if (mem.isStore) {
                    uint16_t v = bb.emitGetReg(instr.r1);
                    bb.emitStore(base, instr.imm, v, mem.size);
                } else {
                    uint16_t v = bb.emitLoad(base, instr.imm, mem.size,
                                             mem.signExt);
                    bb.emitSetReg(instr.r1, v);
                }
            } else {
                panic("translator: unhandled opcode %s",
                      isa::opcodeName(instr.op));
            }
            break;
          }
        }

        pc = next_pc;
    }

    tb->byteSize = pc - start_pc;
    tb->marked.assign(tb->instrPcs.size(), false);

    // Chain to the next block if we fell off the instruction limit.
    if (!terminated && !tb->instrPcs.empty()) {
        MicroOp op;
        op.op = UOp::Goto;
        op.imm = pc;
        tb->ops.push_back(op);
    }

    tb->origOpCount = static_cast<uint32_t>(tb->ops.size());
    tb->origNumTemps = tb->numTemps;
    if (config_.verify)
        analysis::verifyOrPanic(*tb, "post-translate");
    return tb;
}

std::shared_ptr<TranslationBlock>
Translator::translate(uint32_t start_pc, const CodeReader &reader)
{
    auto tb = translateRaw(start_pc, reader);
    optimizeBlock(*tb);
    return tb;
}

void
Translator::optimizeBlock(TranslationBlock &tb) const
{
    if (!config_.optimize)
        return;
    analysis::optimizeBlock(tb);
    if (config_.verify)
        analysis::verifyOrPanic(tb, "post-optimize");
}

// --- TbCache ------------------------------------------------------------

uint64_t
TbCache::checksum(const TranslationBlock &tb, const CodeReader &reader) const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint32_t i = 0; i < tb.byteSize; ++i) {
        uint8_t byte = 0;
        if (!reader(tb.pc + i, &byte))
            return ~0ULL;
        h = (h ^ byte) * 0x100000001b3ULL;
    }
    return h;
}

std::shared_ptr<TranslationBlock>
TbCache::lookup(uint32_t pc, const CodeReader &reader, bool *clean)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (clean)
        *clean = false;
    auto it = blocks_.find(pc);
    if (it == blocks_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    const Entry &entry = it->second;
    // Verify pages that were ever written (self-modifying code may
    // diverge between states sharing this cache).
    bool ever_dirty = false;
    uint32_t first_page = pc >> kCodePageBits;
    uint32_t last_page = (pc + entry.tb->byteSize - 1) >> kCodePageBits;
    for (uint32_t page = first_page; page <= last_page; ++page) {
        if (dirtyPages_.count(page)) {
            ever_dirty = true;
            if (checksum(*entry.tb, reader) != entry.checksum) {
                misses_.fetch_add(1, std::memory_order_relaxed);
                return nullptr;
            }
            break;
        }
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (clean)
        *clean = !ever_dirty;
    return entry.tb;
}

std::shared_ptr<TranslationBlock>
TbCache::insert(const std::shared_ptr<TranslationBlock> &tb,
                const CodeReader &reader, bool *clean)
{
    uint64_t sum = checksum(*tb, reader);
    std::lock_guard<std::mutex> lock(mu_);
    uint32_t first_page = tb->pc >> kCodePageBits;
    uint32_t last_page =
        tb->byteSize ? (tb->pc + tb->byteSize - 1) >> kCodePageBits
                     : first_page;
    bool ever_dirty = false;
    for (uint32_t page = first_page; page <= last_page; ++page)
        if (dirtyPages_.count(page))
            ever_dirty = true;
    if (clean)
        *clean = !ever_dirty;

    auto it = blocks_.find(tb->pc);
    if (it != blocks_.end() && it->second.checksum == sum) {
        // A concurrent worker translated the same code first; keep the
        // published block canonical so execution counts aggregate.
        return it->second.tb;
    }
    Entry entry;
    entry.tb = tb;
    entry.checksum = sum;
    blocks_[tb->pc] = entry;
    for (uint32_t page = first_page; page <= last_page; ++page) {
        pageIndex_[page].push_back(tb->pc);
        pageBit(page).fetch_or(pageMask(page), std::memory_order_relaxed);
    }
    return tb;
}

void
TbCache::notifyWrite(uint32_t addr, uint32_t len)
{
    if (len == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    bool invalidated = false;
    for (uint32_t page = addr >> kCodePageBits;
         page <= (addr + len - 1) >> kCodePageBits; ++page) {
        auto it = pageIndex_.find(page);
        if (it == pageIndex_.end())
            continue;
        dirtyPages_.insert(page);
        for (uint32_t tb_pc : it->second)
            blocks_.erase(tb_pc);
        pageIndex_.erase(it);
        invalidated = true;
        // The page bitmap bit stays set: future overlapsCode() calls
        // keep routing writes here, which is conservative but correct.
    }
    if (invalidated)
        generation_.fetch_add(1, std::memory_order_release);
}

void
TbCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    blocks_.clear();
    pageIndex_.clear();
    dirtyPages_.clear();
    for (auto &word : pageBitmap_)
        word.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
}

size_t
TbCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return blocks_.size();
}

} // namespace s2e::dbt
