/**
 * @file
 * "Vanilla" concrete executor: interprets translation blocks over raw
 * uint32 temporaries and a flat byte array, with no symbolic checks,
 * devices, interrupts or state forking.
 *
 * This is the baseline for the §6.2 overhead experiment — it plays
 * the role of vanilla QEMU against which S2E's concrete-mode and
 * symbolic-mode slowdowns are measured.
 */

#ifndef S2E_DBT_FASTEXEC_HH
#define S2E_DBT_FASTEXEC_HH

#include <cstdint>
#include <vector>

#include "dbt/translator.hh"
#include "isa/assembler.hh"

namespace s2e::dbt {

/** Result of a fast run. */
struct FastRunResult {
    uint64_t instructions = 0;
    uint64_t blocks = 0;
    bool halted = false;
    uint32_t finalPc = 0;
};

/** Flat machine: registers, flags, memory. No I/O, no interrupts. */
class FastMachine
{
  public:
    explicit FastMachine(uint32_t ram_size) : mem(ram_size, 0) {}

    uint32_t regs[isa::kNumRegs] = {0};
    uint32_t flags[4] = {0}; ///< Z N C V as 0/1
    uint32_t pc = 0;
    std::vector<uint8_t> mem;

    /** Load a program image. */
    void load(const isa::Program &program);
};

/**
 * Run until Halt, an out-of-range pc, or the instruction budget is
 * exhausted. Port I/O reads as 0 and writes are ignored; software
 * interrupts halt (the fast machine models no kernel).
 */
FastRunResult fastRun(FastMachine &machine, uint64_t maxInstructions,
                      TbCache *cache = nullptr,
                      TranslatorConfig translatorConfig = {});

} // namespace s2e::dbt

#endif // S2E_DBT_FASTEXEC_HH
