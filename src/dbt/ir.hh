/**
 * @file
 * Micro-op intermediate representation produced by the dynamic binary
 * translator.
 *
 * Guest instructions are lowered into straight-line translation blocks
 * (TBs) of micro-ops over virtual temporaries, the way QEMU lowers
 * x86 into TCG ops (and S2E further into LLVM). Condition flags are
 * computed explicitly with mask/shift/compare micro-ops, which is what
 * produces the bitfield-heavy symbolic expressions that the paper's
 * §5 simplifier exists to clean up.
 */

#ifndef S2E_DBT_IR_HH
#define S2E_DBT_IR_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace s2e::dbt {

/** Condition flags, stored as 0/1 temps at execution time. */
enum class Flag : uint8_t { Z = 0, N = 1, C = 2, V = 3 };

/** Micro-operations. Unless noted, dst/a/b are temp indices. */
enum class UOp : uint8_t {
    Const,  ///< t[dst] = imm
    GetReg, ///< t[dst] = reg[reg]
    SetReg, ///< reg[reg] = t[a]

    Add,
    Sub,
    Mul,
    UDiv,
    SDiv,
    URem,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
    Not, ///< t[dst] = ~t[a]
    Neg, ///< t[dst] = -t[a]

    CmpEq,  ///< t[dst] = t[a] == t[b]
    CmpUlt, ///< t[dst] = t[a] <u t[b]
    CmpSlt, ///< t[dst] = t[a] <s t[b]

    Load,  ///< t[dst] = mem[t[a] + imm]; size 1/2/4; signExt
    Store, ///< mem[t[a] + imm] = t[b]; size 1/2/4

    GetFlag, ///< t[dst] = flag[reg]   (reg reused as flag id)
    SetFlag, ///< flag[reg] = t[a]

    In,  ///< t[dst] = io_read(port = t[a])
    Out, ///< io_write(port = t[a], value = t[b])

    // Terminators (each TB ends with exactly one)
    Goto,    ///< pc = imm
    GotoInd, ///< pc = t[a]
    Branch,  ///< pc = t[a] != 0 ? imm : imm2
    CallDir, ///< push handled by earlier uops; pc = imm (kept distinct
             ///< from Goto so analyzers can spot calls)
    Ret,     ///< pc = t[a] (distinct from GotoInd for analyzers)
    IntSw,   ///< software interrupt, vector = imm
    IretOp,  ///< return from interrupt
    Halt,    ///< stop the machine

    S2Op, ///< custom S2E opcode; imm = isa opcode byte, operands in
          ///< reg / a / imm2 as defined by the opcode
};

/** One micro-op. Fixed-size POD for dense TB storage. */
struct MicroOp {
    UOp op = UOp::Const;
    uint8_t size = 4;      ///< access size for Load/Store
    bool signExt = false;  ///< sign-extending load
    uint8_t reg = 0;       ///< guest register / flag id
    uint16_t dst = 0;
    uint16_t a = 0;
    uint16_t b = 0;
    uint32_t imm = 0;
    uint32_t imm2 = 0;

    std::string toString() const;
};

/**
 * A translated block: the micro-ops for a straight-line run of guest
 * instructions ending at the first control-flow instruction.
 */
struct TranslationBlock {
    uint32_t pc = 0;       ///< guest address of the first instruction
    uint32_t byteSize = 0; ///< guest bytes covered
    uint16_t numTemps = 0;
    std::vector<MicroOp> ops;

    /** Guest pc of each instruction in the block, in order. */
    std::vector<uint32_t> instrPcs;
    /** Index into ops[] where each guest instruction begins. */
    std::vector<uint32_t> instrOpIndex;
    /** Per-instruction mark set by onInstrTranslation subscribers. */
    std::vector<bool> marked;

    uint64_t execCount = 0;

    /** Op and temp counts as emitted, before optimization passes
     *  shrank the block (equal to ops.size()/numTemps when the
     *  optimizer is off). Overhead metrics compare against these. */
    uint32_t origOpCount = 0;
    uint16_t origNumTemps = 0;

    /**
     * Guest pc of the instruction that owns ops[op_index].
     * instrOpIndex is non-decreasing, so the owning instruction is
     * the last entry with instrOpIndex <= op_index: binary search
     * instead of the obvious linear scan — this sits on the
     * per-micro-op fault/event path.
     */
    uint32_t
    instrPcForOp(size_t op_index) const
    {
        auto it = std::upper_bound(instrOpIndex.begin(),
                                   instrOpIndex.end(), op_index);
        if (it == instrOpIndex.begin())
            return pc;
        return instrPcs[std::distance(instrOpIndex.begin(), it) - 1];
    }

    std::string toString() const;
};

} // namespace s2e::dbt

#endif // S2E_DBT_IR_HH
